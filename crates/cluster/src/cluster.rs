//! Cluster orchestration: spawning workers, client messaging, barriers,
//! metrics collection, shutdown.
//!
//! [`Cluster::spawn`] builds the configured [`Transport`] fabric and starts
//! one OS thread per worker node; each thread runs an event loop that feeds
//! messages to the node's [`NodeHandler`]. The calling thread plays the
//! paper's *client node*: it submits queries with [`Cluster::send`] /
//! [`Cluster::broadcast`] and harvests results with
//! [`Cluster::recv_timeout`]. All cluster messaging is transport-agnostic:
//! the cost model charges the same modeled nanoseconds whether frames move
//! through in-process channels or real TCP sockets.
//!
//! For multi-threaded clients the receive path can be *split off* with
//! [`Cluster::take_client_receiver`]: the returned [`ClientReceiver`] is
//! moved to a dedicated reader thread (e.g. `harmony-core`'s session
//! router) while any number of threads keep submitting through
//! [`Cluster::send`], which only needs `&self`.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::ClusterError;
use crate::metrics::{ClusterSnapshot, NodeMetrics};
use crate::net::{CommMode, ComputeRates, DelayMode, NetworkModel};
use crate::node::{send_impl, spin_sleep, NodeCtx, NodeHandler, NodeId, Shared, CLIENT};
use crate::transport::{build_transport, Frame, Transport, TransportKind};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes (the paper uses 4–20).
    pub workers: usize,
    /// Interconnect cost model.
    pub net: NetworkModel,
    /// Blocking vs non-blocking delivery (Fig. 2b's B / NB).
    pub comm_mode: CommMode,
    /// Whether modeled cost is injected as real delay.
    pub delay: DelayMode,
    /// Modeled per-node computation rates (see [`ComputeRates`]).
    pub rates: ComputeRates,
    /// Drop every n-th message (0 = never); deterministic failure injection.
    pub drop_every_nth: u64,
    /// Which fabric physically carries the frames.
    pub transport: TransportKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            net: NetworkModel::default(),
            comm_mode: CommMode::NonBlocking,
            delay: DelayMode::Account,
            rates: ComputeRates::default(),
            drop_every_nth: 0,
            transport: TransportKind::default(),
        }
    }
}

impl ClusterConfig {
    /// Config with `workers` nodes and defaults elsewhere.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// A running simulated cluster.
///
/// Dropping the cluster shuts it down; call [`Cluster::shutdown`] for an
/// orderly join with error reporting.
pub struct Cluster {
    config: ClusterConfig,
    shared: Arc<Shared>,
    transport: Arc<dyn Transport>,
    /// `true` after [`Cluster::take_client_receiver`] moved the client
    /// mailbox out.
    client_taken: bool,
    /// User messages buffered while waiting for barrier pongs.
    pending: VecDeque<(NodeId, Bytes)>,
    handles: Vec<JoinHandle<()>>,
    next_ping_token: u64,
    down: bool,
}

impl Cluster {
    /// Spawns `config.workers` worker threads, building each node's handler
    /// with `factory(node_id)`.
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or the transport fabric cannot be
    /// brought up (use [`Cluster::try_spawn`] to handle that).
    pub fn spawn<H, F>(config: ClusterConfig, factory: F) -> Self
    where
        H: NodeHandler,
        F: FnMut(NodeId) -> H,
    {
        Self::try_spawn(config, factory).expect("bring up cluster transport")
    }

    /// Fallible [`Cluster::spawn`]: surfaces transport bring-up failures
    /// (e.g. a TCP listener that cannot bind) instead of panicking.
    ///
    /// # Errors
    /// [`ClusterError::Io`] when the transport cannot be constructed.
    ///
    /// # Panics
    /// Panics if `config.workers == 0`.
    pub fn try_spawn<H, F>(config: ClusterConfig, mut factory: F) -> Result<Self, ClusterError>
    where
        H: NodeHandler,
        F: FnMut(NodeId) -> H,
    {
        assert!(config.workers > 0, "cluster needs at least one worker");

        let shared = Arc::new(Shared {
            net: config.net,
            rates: config.rates,
            comm_mode: config.comm_mode,
            delay: config.delay,
            worker_metrics: (0..config.workers)
                .map(|_| NodeMetrics::default())
                .collect(),
            client_metrics: NodeMetrics::default(),
            drop_counter: AtomicU64::new(0),
            drop_every_nth: config.drop_every_nth,
        });

        let transport = build_transport(&config.transport, config.workers)?;

        let mut handles = Vec::with_capacity(config.workers);
        for node_id in 0..config.workers {
            let ctx = NodeCtx {
                node_id,
                transport: Arc::clone(&transport),
                shared: Arc::clone(&shared),
            };
            let handler = factory(node_id);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("harmony-worker-{node_id}"))
                    .spawn(move || worker_main(handler, ctx))
                    .map_err(|e| ClusterError::Io(format!("spawn worker thread: {e}")))?,
            );
        }

        Ok(Self {
            config,
            shared,
            transport,
            client_taken: false,
            pending: VecDeque::new(),
            handles,
            next_ping_token: 1,
            down: false,
        })
    }

    /// Number of worker nodes.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// The configuration the cluster was spawned with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Sends `payload` from the client to worker `to`.
    ///
    /// # Errors
    /// [`ClusterError::UnknownNode`] / [`ClusterError::NodeDown`] /
    /// [`ClusterError::Backpressure`] / [`ClusterError::ShutDown`].
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), ClusterError> {
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        send_impl(&self.shared, &*self.transport, CLIENT, to, payload)
    }

    /// Sends a copy of `payload` to every worker.
    ///
    /// # Errors
    /// Fails on the first undeliverable worker.
    pub fn broadcast(&self, payload: &Bytes) -> Result<(), ClusterError> {
        for w in 0..self.config.workers {
            self.send(w, payload.clone())?;
        }
        Ok(())
    }

    /// Receives the next message addressed to the client.
    ///
    /// # Errors
    /// [`ClusterError::Timeout`] when nothing arrives in time, and
    /// [`ClusterError::ReceiverDetached`] after
    /// [`Cluster::take_client_receiver`].
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(NodeId, Bytes), ClusterError> {
        if self.client_taken {
            return Err(ClusterError::ReceiverDetached);
        }
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        recv_user_frame(&*self.transport, timeout)
    }

    /// Detaches the client mailbox as a standalone [`ClientReceiver`].
    ///
    /// After the split, `&self` sends ([`Cluster::send`] /
    /// [`Cluster::broadcast`]) keep working from any thread, while all
    /// receiving goes through the returned handle — typically on one
    /// dedicated reader thread. Messages already buffered by
    /// [`Cluster::quiesce`] move over with it. Subsequent calls to
    /// [`Cluster::recv_timeout`] or [`Cluster::quiesce`] report
    /// [`ClusterError::ReceiverDetached`].
    ///
    /// # Errors
    /// [`ClusterError::ReceiverDetached`] if the receiver was already taken.
    pub fn take_client_receiver(&mut self) -> Result<ClientReceiver, ClusterError> {
        if self.client_taken {
            return Err(ClusterError::ReceiverDetached);
        }
        self.client_taken = true;
        Ok(ClientReceiver {
            transport: Arc::clone(&self.transport),
            pending: std::mem::take(&mut self.pending),
        })
    }

    /// Barrier: waits until every worker has drained its mailbox `rounds`
    /// times. One round is sufficient for client→worker→client round trips;
    /// pipelines that hop across `h` workers need `rounds >= h`.
    ///
    /// User messages arriving during the barrier are buffered and later
    /// returned by [`Cluster::recv_timeout`] in order.
    ///
    /// # Errors
    /// [`ClusterError::Timeout`] when a worker fails to answer in time,
    /// [`ClusterError::ReceiverDetached`] after
    /// [`Cluster::take_client_receiver`].
    pub fn quiesce(&mut self, rounds: usize, timeout: Duration) -> Result<(), ClusterError> {
        if self.client_taken {
            return Err(ClusterError::ReceiverDetached);
        }
        if self.down {
            return Err(ClusterError::ShutDown);
        }
        let deadline = Instant::now() + timeout;
        for _ in 0..rounds {
            let token = self.next_ping_token;
            self.next_ping_token += 1;
            // Barrier probes ride the transport out-of-band: no cost model.
            self.transport.broadcast(&Frame::Ping { token })?;
            let mut acked = vec![false; self.config.workers];
            let mut acks = 0;
            while acks < self.config.workers {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.transport.recv(CLIENT, remaining) {
                    Ok(Frame::Pong { token: t, from }) if t == token => {
                        if let Some(slot) = acked.get_mut(from) {
                            if !*slot {
                                *slot = true;
                                acks += 1;
                            }
                        }
                    }
                    Ok(Frame::Pong { .. }) => {}
                    Ok(Frame::User {
                        from,
                        payload,
                        injected_delay_ns,
                    }) => {
                        spin_sleep(injected_delay_ns);
                        self.pending.push_back((from, payload));
                    }
                    Ok(_) => {}
                    Err(ClusterError::Timeout) => return Err(ClusterError::Timeout),
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Point-in-time metrics for every node and the client.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            workers: self
                .shared
                .worker_metrics
                .iter()
                .map(NodeMetrics::snapshot)
                .collect(),
            client: self.shared.client_metrics.snapshot(),
        }
    }

    /// The transport fabric carrying this cluster's frames.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Attributes `ns` nanoseconds of computation to the client node
    /// (centroid assignment, prewarming, result merging).
    pub fn record_client_compute(&self, ns: u64) {
        self.shared.client_metrics.add_compute(ns);
        self.shared.client_metrics.add_busy(ns);
    }

    /// Charges *modeled* client computation from work counters (see
    /// [`crate::node::NodeCtx::charge_compute`]).
    pub fn charge_client_compute(&self, point_dims: u64, candidates: u64) {
        let ns = self.shared.rates.compute_ns(point_dims, candidates);
        self.record_client_compute(ns);
    }

    /// Zeroes all metrics (between experiment phases).
    pub fn reset_metrics(&self) {
        for m in &self.shared.worker_metrics {
            m.reset();
        }
        self.shared.client_metrics.reset();
    }

    /// Orderly shutdown: signals every worker, joins its thread, then tears
    /// the transport down.
    ///
    /// # Errors
    /// [`ClusterError::NodeDown`] if a worker thread panicked.
    pub fn shutdown(&mut self) -> Result<(), ClusterError> {
        if self.down {
            return Ok(());
        }
        self.down = true;
        for w in 0..self.config.workers {
            // A worker that already died is reported by join below.
            let _ = self.transport.send(w, Frame::Shutdown);
        }
        let mut first_panic = None;
        for (node_id, handle) in self.handles.drain(..).enumerate() {
            if handle.join().is_err() && first_panic.is_none() {
                first_panic = Some(node_id);
            }
        }
        // Workers are gone; close the fabric so detached receivers observe
        // the disconnect.
        self.transport.shutdown();
        match first_panic {
            Some(node) => Err(ClusterError::NodeDown(node)),
            None => Ok(()),
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Receives the next `User` frame addressed to the client, applying
/// receiver-side delay injection and skipping stray barrier pongs.
fn recv_user_frame(
    transport: &dyn Transport,
    timeout: Duration,
) -> Result<(NodeId, Bytes), ClusterError> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match transport.recv(CLIENT, remaining) {
            Ok(Frame::User {
                from,
                payload,
                injected_delay_ns,
            }) => {
                spin_sleep(injected_delay_ns);
                return Ok((from, payload));
            }
            // Stray pong from an abandoned barrier: skip.
            Ok(_) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// The client-side receive half of a cluster, detached via
/// [`Cluster::take_client_receiver`].
///
/// Exactly one thread should own this handle; it observes every message a
/// worker addresses to [`CLIENT`](crate::node::CLIENT) and applies the same
/// receiver-side delay injection as [`Cluster::recv_timeout`].
pub struct ClientReceiver {
    transport: Arc<dyn Transport>,
    /// Messages buffered by a pre-split [`Cluster::quiesce`] barrier.
    pending: VecDeque<(NodeId, Bytes)>,
}

impl ClientReceiver {
    /// Receives the next message addressed to the client.
    ///
    /// # Errors
    /// [`ClusterError::Timeout`] when nothing arrives in time,
    /// [`ClusterError::ShutDown`] once the cluster has been torn down and
    /// the mailbox is drained.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(NodeId, Bytes), ClusterError> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        recv_user_frame(&*self.transport, timeout)
    }
}

/// Worker event loop: pulls frames off the transport and feeds payloads to
/// the handler.
fn worker_main<H: NodeHandler>(mut handler: H, ctx: NodeCtx) {
    loop {
        match ctx.transport.recv(ctx.node_id, Duration::from_millis(500)) {
            Ok(Frame::User {
                from,
                payload,
                injected_delay_ns,
            }) => {
                // Receiver-side injected network delay (non-blocking+sleep
                // mode): the NIC drains the transfer before the handler runs.
                spin_sleep(injected_delay_ns);
                // Deserialization CPU: modeled, busy-not-compute ("other").
                ctx.metrics()
                    .add_busy(ctx.rates().overhead_ns(payload.len()));
                handler.handle(&ctx, from, payload);
            }
            Ok(Frame::Ping { token }) => {
                // Barrier probe: answer out-of-band (not cost-modeled).
                let _ = ctx.transport.send(
                    CLIENT,
                    Frame::Pong {
                        from: ctx.node_id,
                        token,
                    },
                );
            }
            Ok(Frame::Pong { .. }) => {}
            Ok(Frame::Shutdown) => break,
            Err(ClusterError::Timeout) => continue,
            Err(_) => break,
        }
    }
    handler.on_shutdown(&ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TcpOptions;

    /// Echoes every payload back to the client, uppercased.
    struct Echo;
    impl NodeHandler for Echo {
        fn handle(&mut self, ctx: &NodeCtx, _from: NodeId, payload: Bytes) {
            let up: Vec<u8> = payload.iter().map(|b| b.to_ascii_uppercase()).collect();
            ctx.send(CLIENT, Bytes::from(up)).unwrap();
        }
    }

    /// Forwards the payload to the next worker; the last returns to client.
    struct Ring;
    impl NodeHandler for Ring {
        fn handle(&mut self, ctx: &NodeCtx, _from: NodeId, payload: Bytes) {
            let mut v = payload.to_vec();
            v.push(ctx.id() as u8);
            let next = ctx.id() + 1;
            if next < ctx.workers() {
                ctx.send(next, Bytes::from(v)).unwrap();
            } else {
                ctx.send(CLIENT, Bytes::from(v)).unwrap();
            }
        }
    }

    fn tcp_config(workers: usize) -> ClusterConfig {
        ClusterConfig {
            workers,
            transport: TransportKind::Tcp(TcpOptions::default()),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn echo_roundtrip() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| Echo);
        cluster.send(0, Bytes::from_static(b"ping")).unwrap();
        let (from, reply) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, 0);
        assert_eq!(&reply[..], b"PING");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn echo_roundtrip_over_tcp() {
        let mut cluster = Cluster::spawn(tcp_config(2), |_| Echo);
        cluster.send(0, Bytes::from_static(b"ping")).unwrap();
        let (from, reply) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(from, 0);
        assert_eq!(&reply[..], b"PING");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn multi_hop_pipeline_crosses_all_workers() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(4), |_| Ring);
        cluster.send(0, Bytes::new()).unwrap();
        let (_, reply) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&reply[..], &[0, 1, 2, 3]);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn multi_hop_pipeline_crosses_all_workers_over_tcp() {
        let mut cluster = Cluster::spawn(tcp_config(4), |_| Ring);
        cluster.send(0, Bytes::new()).unwrap();
        let (_, reply) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&reply[..], &[0, 1, 2, 3]);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn metrics_account_messages_and_bytes() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| Echo);
        cluster.send(1, Bytes::from_static(b"abc")).unwrap();
        let _ = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        let snap = cluster.snapshot();
        assert_eq!(snap.client.bytes_tx, 3);
        assert_eq!(snap.workers[1].bytes_rx, 3);
        assert_eq!(snap.workers[1].bytes_tx, 3); // echo reply
        assert_eq!(snap.client.bytes_rx, 3);
        assert_eq!(snap.workers[0].msgs_rx, 0);
        assert!(snap.workers[1].busy_ns > 0);
        // In-process fabric adds no framing.
        assert_eq!(snap.client.wire_tx_bytes, 3);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn tcp_charges_framing_overhead_into_wire_bytes() {
        let mut cluster = Cluster::spawn(tcp_config(1), |_| Echo);
        cluster.send(0, Bytes::from_static(b"abc")).unwrap();
        let _ = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        let snap = cluster.snapshot();
        let overhead = crate::transport::TCP_FRAME_OVERHEAD_BYTES;
        // Payload counters stay payload-only; wire counters add framing.
        assert_eq!(snap.client.bytes_tx, 3);
        assert_eq!(snap.client.wire_tx_bytes, 3 + overhead);
        assert_eq!(snap.workers[0].wire_rx_bytes, 3 + overhead);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| Echo);
        cluster.send(0, Bytes::from_static(b"x")).unwrap();
        let _ = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
        cluster.reset_metrics();
        let snap = cluster.snapshot();
        assert_eq!(snap.total().bytes_tx, 0);
        cluster.shutdown().unwrap();
    }

    #[test]
    fn quiesce_buffers_user_messages() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| Echo);
        cluster.send(0, Bytes::from_static(b"a")).unwrap();
        cluster.send(1, Bytes::from_static(b"b")).unwrap();
        cluster.quiesce(1, Duration::from_secs(5)).unwrap();
        // Both replies must still be retrievable after the barrier.
        let mut got = vec![
            cluster.recv_timeout(Duration::from_secs(1)).unwrap().1,
            cluster.recv_timeout(Duration::from_secs(1)).unwrap().1,
        ];
        got.sort();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"A"), Bytes::from_static(b"B")]
        );
        cluster.shutdown().unwrap();
    }

    #[test]
    fn quiesce_works_over_tcp() {
        let mut cluster = Cluster::spawn(tcp_config(2), |_| Echo);
        cluster.send(0, Bytes::from_static(b"a")).unwrap();
        cluster.quiesce(1, Duration::from_secs(5)).unwrap();
        let (_, reply) = cluster.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&reply[..], b"A");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn dropped_messages_cause_timeout() {
        let cfg = ClusterConfig {
            workers: 1,
            drop_every_nth: 1, // drop everything
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::spawn(cfg, |_| Echo);
        cluster.send(0, Bytes::from_static(b"lost")).unwrap();
        assert_eq!(
            cluster.recv_timeout(Duration::from_millis(50)),
            Err(ClusterError::Timeout)
        );
        cluster.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| Echo);
        cluster.shutdown().unwrap();
        cluster.shutdown().unwrap();
        assert_eq!(cluster.send(0, Bytes::new()), Err(ClusterError::ShutDown));
        // Drop after shutdown must not panic.
        drop(cluster);
    }

    #[test]
    fn tcp_shutdown_is_idempotent_and_drop_safe() {
        let mut cluster = Cluster::spawn(tcp_config(2), |_| Echo);
        cluster.shutdown().unwrap();
        cluster.shutdown().unwrap();
        assert_eq!(cluster.send(0, Bytes::new()), Err(ClusterError::ShutDown));
        drop(cluster);
    }

    #[test]
    fn worker_panic_reported_at_shutdown() {
        struct Panics;
        impl NodeHandler for Panics {
            fn handle(&mut self, _ctx: &NodeCtx, _from: NodeId, _p: Bytes) {
                panic!("boom");
            }
        }
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| Panics);
        cluster.send(0, Bytes::from_static(b"die")).unwrap();
        // Give the worker time to crash.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(cluster.shutdown(), Err(ClusterError::NodeDown(0)));
    }

    #[test]
    fn blocking_sleep_mode_stalls_sender() {
        // 1 ms latency per message, injected for real.
        let cfg = ClusterConfig {
            workers: 1,
            net: NetworkModel {
                bandwidth_gbps: f64::INFINITY,
                latency_ns: 1_000_000,
                per_message_overhead_bytes: 0,
            },
            comm_mode: CommMode::Blocking,
            delay: DelayMode::Sleep { scale: 1.0 },
            ..ClusterConfig::default()
        };
        let cluster = Cluster::spawn(cfg, |_| Echo);
        let t0 = Instant::now();
        cluster.send(0, Bytes::from_static(b"x")).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(1),
            "blocking send returned early"
        );
        drop(cluster);
    }

    #[test]
    fn broadcast_reaches_every_worker() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(3), |_| Echo);
        cluster.broadcast(&Bytes::from_static(b"hi")).unwrap();
        for _ in 0..3 {
            let (_, r) = cluster.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(&r[..], b"HI");
        }
        cluster.shutdown().unwrap();
    }

    #[test]
    fn split_receiver_sees_replies_while_cluster_sends() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(2), |_| Echo);
        let mut rx = cluster.take_client_receiver().unwrap();
        // The cluster half can still send from any thread.
        std::thread::scope(|s| {
            s.spawn(|| cluster.send(0, Bytes::from_static(b"a")).unwrap());
            s.spawn(|| cluster.send(1, Bytes::from_static(b"b")).unwrap());
        });
        let mut got = vec![
            rx.recv_timeout(Duration::from_secs(5)).unwrap().1,
            rx.recv_timeout(Duration::from_secs(5)).unwrap().1,
        ];
        got.sort();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"A"), Bytes::from_static(b"B")]
        );
        // The cluster's own receive path is now detached.
        assert_eq!(
            cluster.recv_timeout(Duration::from_millis(10)),
            Err(ClusterError::ReceiverDetached)
        );
        assert!(matches!(
            cluster.take_client_receiver(),
            Err(ClusterError::ReceiverDetached)
        ));
        cluster.shutdown().unwrap();
    }

    #[test]
    fn split_receiver_observes_disconnect_after_drop() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| Echo);
        let mut rx = cluster.take_client_receiver().unwrap();
        drop(cluster);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Err(ClusterError::ShutDown)
        );
    }

    #[test]
    fn tcp_split_receiver_observes_disconnect_after_drop() {
        let mut cluster = Cluster::spawn(tcp_config(1), |_| Echo);
        let mut rx = cluster.take_client_receiver().unwrap();
        drop(cluster);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Err(ClusterError::ShutDown)
        );
    }

    #[test]
    fn split_receiver_carries_quiesce_buffered_messages() {
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| Echo);
        cluster.send(0, Bytes::from_static(b"x")).unwrap();
        cluster.quiesce(1, Duration::from_secs(5)).unwrap();
        let mut rx = cluster.take_client_receiver().unwrap();
        let (_, reply) = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(&reply[..], b"X");
        cluster.shutdown().unwrap();
    }

    #[test]
    fn on_shutdown_hook_runs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static RAN: AtomicBool = AtomicBool::new(false);
        struct Hooked;
        impl NodeHandler for Hooked {
            fn handle(&mut self, _ctx: &NodeCtx, _from: NodeId, _p: Bytes) {}
            fn on_shutdown(&mut self, _ctx: &NodeCtx) {
                RAN.store(true, Ordering::SeqCst);
            }
        }
        let mut cluster = Cluster::spawn(ClusterConfig::new(1), |_| Hooked);
        cluster.shutdown().unwrap();
        assert!(RAN.load(Ordering::SeqCst));
    }
}
