//! Length-prefixed little-endian binary wire codec.
//!
//! Harmony's simulated cluster serializes every inter-node message for real,
//! so the byte counts fed into the network cost model are exact — not
//! estimates. A hand-rolled codec (rather than a serde backend) keeps the
//! wire format deterministic, dependency-light, and easy to reason about
//! when auditing the communication-volume claims of the paper (§4.2.2:
//! "the total data sent does not change").
//!
//! Format rules:
//! * all integers little-endian; `usize` travels as `u64`;
//! * collections are a `u64` element count followed by the elements;
//! * `Option<T>` is a `u8` tag (0/1) optionally followed by `T`;
//! * no padding, no framing — framing belongs to the transport.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// The bytes were structurally invalid (bad tag, oversized length, ...).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A type that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value, consuming bytes from `buf`.
    ///
    /// # Errors
    /// [`CodecError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Convenience: decodes from a complete buffer, requiring full
    /// consumption.
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when trailing bytes remain.
    fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        let mut buf = bytes;
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes",
                buf.remaining()
            )));
        }
        Ok(v)
    }
}

macro_rules! check_len {
    ($buf:expr, $n:expr) => {
        if $buf.remaining() < $n {
            return Err(CodecError::UnexpectedEof);
        }
    };
}

macro_rules! impl_wire_primitive {
    ($ty:ty, $put:ident, $get:ident, $size:expr) => {
        impl Wire for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
                check_len!(buf, $size);
                Ok(buf.$get())
            }
        }
    };
}

impl_wire_primitive!(u8, put_u8, get_u8, 1);
impl_wire_primitive!(u16, put_u16_le, get_u16_le, 2);
impl_wire_primitive!(u32, put_u32_le, get_u32_le, 4);
impl_wire_primitive!(u64, put_u64_le, get_u64_le, 8);
impl_wire_primitive!(i64, put_i64_le, get_i64_le, 8);
impl_wire_primitive!(f32, put_f32_le, get_f32_le, 4);
impl_wire_primitive!(f64, put_f64_le, get_f64_le, 8);

impl Wire for usize {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    #[inline]
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        check_len!(buf, 8);
        let v = buf.get_u64_le();
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("usize overflow: {v}")))
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    #[inline]
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        check_len!(buf, 1);
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::Invalid(format!("bad bool tag {t}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = usize::decode(buf)?;
        check_len!(buf, len);
        let bytes = buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("invalid utf8: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = usize::decode(buf)?;
        // Guard against hostile / corrupt lengths: each element needs at
        // least one byte on the wire.
        if len > buf.remaining() {
            return Err(CodecError::Invalid(format!(
                "declared {len} elements but only {} bytes remain",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        check_len!(buf, 1);
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(CodecError::Invalid(format!("bad option tag {t}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// Bulk-encodes an `f32` slice (length prefix + raw LE floats).
///
/// Equivalent to `Vec::<f32>::encode` but callable on borrowed slices,
/// avoiding a copy on the hot send path.
pub fn encode_f32_slice(slice: &[f32], buf: &mut BytesMut) {
    buf.reserve(8 + slice.len() * 4);
    buf.put_u64_le(slice.len() as u64);
    for &x in slice {
        buf.put_f32_le(x);
    }
}

/// Bulk-encodes a `u64` slice (length prefix + raw LE integers).
pub fn encode_u64_slice(slice: &[u64], buf: &mut BytesMut) {
    buf.reserve(8 + slice.len() * 8);
    buf.put_u64_le(slice.len() as u64);
    for &x in slice {
        buf.put_u64_le(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(1234u16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX / 2);
    }

    #[test]
    fn strings_and_collections_roundtrip() {
        roundtrip(String::from("harmony"));
        roundtrip(String::new());
        roundtrip(String::from("ünïcødé ⚡"));
        roundtrip(vec![1.0f32, -2.5, 3.75]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![vec![1u32, 2], vec![], vec![3]]);
        roundtrip(Some(7u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u32, 2.0f32));
        roundtrip((1u8, String::from("x"), vec![9u64]));
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let bytes = 0xAABBCCDDu32.to_bytes();
        let mut short = bytes.slice(0..2);
        assert_eq!(u32::decode(&mut short), Err(CodecError::UnexpectedEof));

        let v = vec![1u64, 2, 3].to_bytes();
        let mut short = v.slice(0..12);
        assert!(Vec::<u64>::decode(&mut short).is_err());
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut buf = BytesMut::new();
        1u32.encode(&mut buf);
        buf.put_u8(0xFF);
        assert!(matches!(
            u32::from_bytes(buf.freeze()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        let raw = Bytes::from_static(&[7]);
        assert!(matches!(
            bool::from_bytes(raw.clone()),
            Err(CodecError::Invalid(_))
        ));
        assert!(matches!(
            Option::<u8>::from_bytes(raw),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims u64::MAX elements with an empty body.
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        assert!(matches!(
            Vec::<u8>::from_bytes(buf.freeze()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn slice_helpers_match_vec_encoding() {
        let v = vec![1.5f32, -2.0, 0.0];
        let mut a = BytesMut::new();
        v.encode(&mut a);
        let mut b = BytesMut::new();
        encode_f32_slice(&v, &mut b);
        assert_eq!(a, b);

        let ids = vec![10u64, 20, 30];
        let mut a = BytesMut::new();
        ids.encode(&mut a);
        let mut b = BytesMut::new();
        encode_u64_slice(&ids, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(2);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            String::from_bytes(buf.freeze()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn nested_option_tuple_roundtrip() {
        roundtrip(Some((vec![1u32, 2], Some(3.0f64))));
    }
}
