//! # harmony-cluster
//!
//! Simulated multi-node cluster substrate for the Harmony distributed vector
//! database.
//!
//! The paper evaluates Harmony on a 20-node Xeon cluster connected by
//! 100 Gb/s links and driven over OpenMPI. This crate reproduces that
//! environment in-process (see DESIGN.md §4 *Substitutions*):
//!
//! * each worker node is an OS thread with a crossbeam-channel mailbox
//!   ([`node`], [`cluster`]),
//! * messages are *really serialized* through a length-prefixed binary wire
//!   codec ([`codec`]) so byte counts are exact,
//! * every message is charged against a configurable network cost model
//!   ([`net`]) — `latency + bytes / bandwidth` — in both blocking and
//!   non-blocking (overlapped) delivery modes, mirroring the paper's
//!   `MPI_Send` vs `MPI_Isend` comparison (Fig. 2b),
//! * per-node metrics ([`metrics`]) break busy time into computation,
//!   communication and other overhead — the three-way breakdown of
//!   Figs. 2b & 8,
//! * an optional byte-tracking global allocator ([`mem`]) measures the peak
//!   memory numbers of Tables 4 & 5.
//!
//! The substrate is payload-agnostic: `harmony-core` layers its typed RPC on
//! top of [`bytes::Bytes`] payloads.

// New unsafe code must state its obligations: each unsafe operation inside
// an `unsafe fn` needs its own block (and a `// SAFETY:` comment, enforced
// by harmony-lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod codec;
pub mod error;
pub mod mem;
pub mod metrics;
pub mod net;
pub mod node;
pub mod transport;

pub use cluster::{ClientReceiver, Cluster, ClusterConfig};
pub use codec::{CodecError, Wire};
pub use error::ClusterError;
pub use metrics::{ClusterSnapshot, NodeMetrics, NodeSnapshot, TimeBreakdown};
pub use net::{CommMode, ComputeRates, DelayMode, NetworkModel};
pub use node::{NodeCtx, NodeHandler, NodeId, CLIENT};
pub use transport::{
    decode_frame, encode_frame, Frame, InProcTransport, TcpOptions, TcpTransport, Transport,
    TransportKind, MAX_FRAME_BYTES,
};
