//! Byte-tracking global allocator.
//!
//! Tables 4 and 5 of the paper report index memory and peak query-time
//! memory. To measure those faithfully, benchmark binaries install
//! [`TrackingAllocator`] as their `#[global_allocator]`; it forwards to the
//! system allocator while maintaining `current` and high-water `peak`
//! counters with relaxed atomics (the peak uses a CAS loop so concurrent
//! allocations never lose a high-water mark).
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: harmony_cluster::mem::TrackingAllocator =
//!     harmony_cluster::mem::TrackingAllocator;
//!
//! mem::reset_peak();
//! run_queries();
//! println!("peak = {} bytes", mem::peak_bytes());
//! ```
//!
//! When the allocator is *not* installed the counters simply stay at zero;
//! [`is_active`] lets reports distinguish "no allocations" from "not
//! installed".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRANSPORT_BUFFERED: AtomicUsize = AtomicUsize::new(0);
static F32_BLOCK_BYTES: AtomicUsize = AtomicUsize::new(0);
static SQ8_BLOCK_BYTES: AtomicUsize = AtomicUsize::new(0);
static DELTA_BLOCK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOMBSTONE_ENTRIES: AtomicUsize = AtomicUsize::new(0);
static CACHE_BLOCK_BYTES: AtomicUsize = AtomicUsize::new(0);
static SPILLED_BLOCK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A [`GlobalAlloc`] wrapper around the system allocator that tracks live
/// and peak heap usage.
pub struct TrackingAllocator;

// SAFETY: delegates all allocation to `System`, only adding counter updates.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

#[inline]
fn on_alloc(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // CAS loop: never let a concurrent peak observation be lost.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(observed) => peak = observed,
        }
    }
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

/// Live heap bytes right now (zero when the allocator is not installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, beginning a new measurement
/// window.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Total number of allocations observed (diagnostic).
pub fn total_allocations() -> usize {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// `true` when the tracking allocator has observed at least one allocation,
/// i.e. it is installed as the global allocator.
pub fn is_active() -> bool {
    total_allocations() > 0
}

/// Wire bytes currently parked in transport send queues (frames accepted by
/// `Transport::send` but not yet written to the fabric). Unlike the heap
/// counters this gauge works without installing the tracking allocator.
pub fn transport_buffered_bytes() -> usize {
    TRANSPORT_BUFFERED.load(Ordering::Relaxed)
}

/// Accounts `n` wire bytes entering a transport send queue.
pub(crate) fn transport_buffer_add(n: usize) {
    TRANSPORT_BUFFERED.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` wire bytes leaving a transport send queue.
pub(crate) fn transport_buffer_sub(n: usize) {
    TRANSPORT_BUFFERED.fetch_sub(n, Ordering::Relaxed);
}

/// Resident block payload bytes stored in exact f32 form across every live
/// worker in the process (vector coordinates only; ids and norm tables are
/// excluded). Maintained by the worker layer; works without installing the
/// tracking allocator.
pub fn f32_block_bytes() -> usize {
    F32_BLOCK_BYTES.load(Ordering::Relaxed)
}

/// Resident block payload bytes stored in SQ8-quantized form (codes +
/// per-row code sums + segment headers) across every live worker.
pub fn sq8_block_bytes() -> usize {
    SQ8_BLOCK_BYTES.load(Ordering::Relaxed)
}

/// Accounts `n` bytes of f32 block payload coming resident.
pub fn f32_block_add(n: usize) {
    F32_BLOCK_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` bytes of f32 block payload being dropped.
pub fn f32_block_sub(n: usize) {
    F32_BLOCK_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// Accounts `n` bytes of SQ8 block payload coming resident.
pub fn sq8_block_add(n: usize) {
    SQ8_BLOCK_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` bytes of SQ8 block payload being dropped.
pub fn sq8_block_sub(n: usize) {
    SQ8_BLOCK_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// Resident delta-list payload bytes (freshly upserted rows held in exact
/// f32 form awaiting compaction) across every live worker.
pub fn delta_block_bytes() -> usize {
    DELTA_BLOCK_BYTES.load(Ordering::Relaxed)
}

/// Accounts `n` bytes of delta-list payload coming resident.
pub fn delta_block_add(n: usize) {
    DELTA_BLOCK_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` bytes of delta-list payload being dropped.
pub fn delta_block_sub(n: usize) {
    DELTA_BLOCK_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// Tombstoned ids currently held across every live worker epoch.
pub fn tombstone_entries() -> usize {
    TOMBSTONE_ENTRIES.load(Ordering::Relaxed)
}

/// Accounts `n` ids entering worker tombstone sets.
pub fn tombstone_add(n: usize) {
    TOMBSTONE_ENTRIES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` ids leaving worker tombstone sets (compaction or evict).
pub fn tombstone_sub(n: usize) {
    TOMBSTONE_ENTRIES.fetch_sub(n, Ordering::Relaxed);
}

/// Resident block payload bytes held by warm-tier block caches (spilled
/// blocks faulted back and retained under the cache's byte budget) across
/// every live worker. A subset of the per-representation gauges above:
/// cached bytes are still counted in `f32_block_bytes`/`sq8_block_bytes`,
/// this gauge tells how many of them are evictable.
pub fn cache_block_bytes() -> usize {
    CACHE_BLOCK_BYTES.load(Ordering::Relaxed)
}

/// Accounts `n` bytes of spilled block payload faulting into a cache.
pub fn cache_block_add(n: usize) {
    CACHE_BLOCK_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` bytes of cached block payload being evicted or pinned.
pub fn cache_block_sub(n: usize) {
    CACHE_BLOCK_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// On-disk block-file payload bytes for spilled (warm/cold tier) grid
/// blocks across every live worker. Disk-resident, *not* part of any RAM
/// gauge; a block faulted back into the cache stays counted here until its
/// spill file is deleted.
pub fn spilled_block_bytes() -> usize {
    SPILLED_BLOCK_BYTES.load(Ordering::Relaxed)
}

/// Accounts `n` payload bytes written to a spill file.
pub fn spilled_block_add(n: usize) {
    SPILLED_BLOCK_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Accounts `n` payload bytes of spill files deleted (promotion/eviction).
pub fn spilled_block_sub(n: usize) {
    SPILLED_BLOCK_BYTES.fetch_sub(n, Ordering::Relaxed);
}

/// Formats a byte count using binary units ("3.21 GiB").
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests exercise the counter arithmetic directly; the
    // allocator itself is installed (and integration-tested) in the bench
    // binaries, because a crate cannot install a global allocator for its
    // own unit tests without forcing it on every dependent.

    #[test]
    fn alloc_dealloc_counters_balance() {
        let before = current_bytes();
        on_alloc(1024);
        assert_eq!(current_bytes(), before + 1024);
        assert!(peak_bytes() >= before + 1024);
        on_dealloc(1024);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn peak_tracks_high_water() {
        reset_peak();
        let base = current_bytes();
        on_alloc(4096);
        on_dealloc(4096);
        on_alloc(16);
        assert!(peak_bytes() >= base + 4096);
        on_dealloc(16);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }

    #[test]
    fn format_bytes_uses_binary_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert!(format_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn repr_gauges_balance() {
        let (f0, s0) = (f32_block_bytes(), sq8_block_bytes());
        f32_block_add(4096);
        sq8_block_add(1024);
        assert_eq!(f32_block_bytes(), f0 + 4096);
        assert_eq!(sq8_block_bytes(), s0 + 1024);
        f32_block_sub(4096);
        sq8_block_sub(1024);
        assert_eq!(f32_block_bytes(), f0);
        assert_eq!(sq8_block_bytes(), s0);
    }

    #[test]
    fn ingest_gauges_balance() {
        let (d0, t0) = (delta_block_bytes(), tombstone_entries());
        delta_block_add(2048);
        tombstone_add(7);
        assert_eq!(delta_block_bytes(), d0 + 2048);
        assert_eq!(tombstone_entries(), t0 + 7);
        delta_block_sub(2048);
        tombstone_sub(7);
        assert_eq!(delta_block_bytes(), d0);
        assert_eq!(tombstone_entries(), t0);
    }

    #[test]
    fn tier_gauges_balance() {
        let (c0, s0) = (cache_block_bytes(), spilled_block_bytes());
        cache_block_add(8192);
        spilled_block_add(65536);
        assert_eq!(cache_block_bytes(), c0 + 8192);
        assert_eq!(spilled_block_bytes(), s0 + 65536);
        cache_block_sub(8192);
        spilled_block_sub(65536);
        assert_eq!(cache_block_bytes(), c0);
        assert_eq!(spilled_block_bytes(), s0);
    }

    #[test]
    fn total_allocations_increments() {
        let before = total_allocations();
        on_alloc(1);
        on_dealloc(1);
        assert!(total_allocations() > before);
    }
}
