//! Worker node runtime: identity, the cost-modeled send path, and the
//! per-node context handed to message handlers.
//!
//! A Harmony deployment is one *client* (master) node plus `N` worker nodes
//! (§6.1 uses "one client node and four worker nodes"). Workers run an event
//! loop (see [`crate::cluster`]) that feeds incoming payloads to a
//! [`NodeHandler`]. The handler sends messages — to peers for pipeline hops,
//! to the client for results — through [`NodeCtx::send`], which charges the
//! network cost model and updates metrics on both ends before handing the
//! frame to the [`Transport`](crate::transport::Transport) fabric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use crate::error::ClusterError;
use crate::metrics::NodeMetrics;
use crate::net::{CommMode, ComputeRates, DelayMode, NetworkModel};
use crate::transport::{Frame, Transport};

/// Identifier of a node within a cluster. Workers are `0..N`.
pub type NodeId = usize;

/// The distinguished client (master) node id.
pub const CLIENT: NodeId = usize::MAX;

/// Logic hosted on a worker node.
///
/// Handlers are single-threaded per node: `handle` is never called
/// concurrently for the same node, so implementations can keep plain
/// mutable state.
pub trait NodeHandler: Send + 'static {
    /// Processes one message. Replies and forwards go through `ctx`.
    fn handle(&mut self, ctx: &NodeCtx, from: NodeId, payload: Bytes);

    /// Called once after the node receives the shutdown signal.
    fn on_shutdown(&mut self, _ctx: &NodeCtx) {}
}

/// Shared cluster state visible to every node.
pub(crate) struct Shared {
    pub net: NetworkModel,
    pub rates: ComputeRates,
    pub comm_mode: CommMode,
    pub delay: DelayMode,
    /// Per-worker metrics, indexed by node id.
    pub worker_metrics: Vec<NodeMetrics>,
    /// Metrics of the client node.
    pub client_metrics: NodeMetrics,
    /// Message counter for deterministic drop injection.
    pub drop_counter: AtomicU64,
    /// Drop every n-th message (0 = never). Deterministic failure injection.
    pub drop_every_nth: u64,
}

impl Shared {
    pub(crate) fn metrics_of(&self, node: NodeId) -> &NodeMetrics {
        if node == CLIENT {
            &self.client_metrics
        } else {
            &self.worker_metrics[node]
        }
    }

    /// Returns `true` when this message must be dropped (failure injection).
    pub(crate) fn should_drop(&self) -> bool {
        if self.drop_every_nth == 0 {
            return false;
        }
        let n = self.drop_counter.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.drop_every_nth)
    }
}

/// Core send path shared by workers and the client: charges the cost model,
/// applies failure injection and delay, then hands the frame to the
/// transport. Everything simulated lives here — the transport below only
/// moves frames — so results are identical across fabrics.
pub(crate) fn send_impl(
    shared: &Shared,
    transport: &dyn Transport,
    from: NodeId,
    to: NodeId,
    payload: Bytes,
) -> Result<(), ClusterError> {
    if to != CLIENT && to >= shared.worker_metrics.len() {
        return Err(ClusterError::UnknownNode(to));
    }

    let bytes = payload.len() as u64;
    // Blocking sends occupy the endpoint for the full transfer (latency +
    // wire time, `MPI_Send`); non-blocking sends only for the wire time
    // (`MPI_Isend` — propagation overlaps with further work).
    let cost_ns = match shared.comm_mode {
        CommMode::Blocking => shared.net.transfer_ns(payload.len()),
        CommMode::NonBlocking => shared.net.occupancy_ns(payload.len()),
    };
    // Wire traffic = payload plus whatever framing this fabric really adds.
    let wire_bytes = bytes + transport.frame_overhead_bytes();
    shared.metrics_of(from).record_tx(bytes, cost_ns);
    shared.metrics_of(from).add_wire_tx(wire_bytes);
    // Serialization CPU at the sender: modeled, charged as busy-not-compute
    // ("other overhead" in the paper's breakdowns).
    shared
        .metrics_of(from)
        .add_busy(shared.rates.overhead_ns(payload.len()));

    if shared.should_drop() {
        // The sender paid for the transmission; the receiver never sees it.
        return Ok(());
    }
    shared.metrics_of(to).record_rx(bytes, cost_ns);
    shared.metrics_of(to).add_wire_rx(wire_bytes);

    let mut injected_delay_ns = 0;
    if let DelayMode::Sleep { scale } = shared.delay {
        let scaled = (cost_ns as f64 * scale) as u64;
        match shared.comm_mode {
            // Blocking send: the sender stalls for the full transfer.
            CommMode::Blocking => spin_sleep(scaled),
            // Non-blocking send: the receiver's NIC drains the transfer
            // before the handler sees the payload.
            CommMode::NonBlocking => injected_delay_ns = scaled,
        }
    }

    transport.send(
        to,
        Frame::User {
            from,
            payload,
            injected_delay_ns,
        },
    )
}

/// Sleeps `ns` nanoseconds with reasonable sub-millisecond accuracy.
pub(crate) fn spin_sleep(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    // Coarse sleep for the bulk, spin for the tail.
    if target > std::time::Duration::from_micros(200) {
        std::thread::sleep(target - std::time::Duration::from_micros(100));
    }
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// Per-node context: identity, peers, metrics, and the cost-model send path.
pub struct NodeCtx {
    pub(crate) node_id: NodeId,
    pub(crate) transport: Arc<dyn Transport>,
    pub(crate) shared: Arc<Shared>,
}

impl NodeCtx {
    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.node_id
    }

    /// Number of worker nodes in the cluster.
    #[inline]
    pub fn workers(&self) -> usize {
        self.transport.workers()
    }

    /// Sends `payload` to `to` (a worker id or [`CLIENT`]), charging the
    /// network model at both endpoints.
    ///
    /// # Errors
    /// [`ClusterError::UnknownNode`] for an invalid id,
    /// [`ClusterError::NodeDown`] when the destination stopped,
    /// [`ClusterError::Backpressure`] when a bounded transport queue stayed
    /// full.
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), ClusterError> {
        send_impl(&self.shared, &*self.transport, self.node_id, to, payload)
    }

    /// Runs `f`, attributing its wall time to this node's *computation*
    /// bucket (the paper's blue bars). Prefer [`NodeCtx::charge_compute`]
    /// on oversubscribed hosts — wall time includes preemption by sibling
    /// workers.
    #[inline]
    pub fn time_compute<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos() as u64;
        self.metrics().add_compute(ns);
        self.metrics().add_busy(ns);
        out
    }

    /// Charges *modeled* computation time for scanning `point_dims`
    /// point-dimension products across `candidates` candidates, using the
    /// cluster's calibrated [`ComputeRates`]. Deterministic and independent
    /// of host scheduling.
    #[inline]
    pub fn charge_compute(&self, point_dims: u64, candidates: u64) {
        let ns = self.shared.rates.compute_ns(point_dims, candidates);
        self.metrics().add_compute(ns);
        self.metrics().add_busy(ns);
    }

    /// The compute rates in force.
    #[inline]
    pub fn rates(&self) -> &ComputeRates {
        &self.shared.rates
    }

    /// This node's metrics.
    #[inline]
    pub fn metrics(&self) -> &NodeMetrics {
        self.shared.metrics_of(self.node_id)
    }

    /// The network model in force.
    #[inline]
    pub fn network(&self) -> &NetworkModel {
        &self.shared.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use std::time::Duration;

    fn test_shared(workers: usize, drop_every_nth: u64) -> Arc<Shared> {
        Arc::new(Shared {
            net: NetworkModel::default(),
            rates: ComputeRates::default(),
            comm_mode: CommMode::NonBlocking,
            delay: DelayMode::Account,
            worker_metrics: (0..workers).map(|_| NodeMetrics::default()).collect(),
            client_metrics: NodeMetrics::default(),
            drop_counter: AtomicU64::new(0),
            drop_every_nth,
        })
    }

    fn test_ctx(shared: Arc<Shared>) -> (NodeCtx, Arc<InProcTransport>) {
        let workers = shared.worker_metrics.len();
        let transport = Arc::new(InProcTransport::new(workers));
        (
            NodeCtx {
                node_id: 0,
                transport: Arc::clone(&transport) as Arc<dyn Transport>,
                shared,
            },
            transport,
        )
    }

    #[test]
    fn send_accounts_both_endpoints() {
        let shared = test_shared(2, 0);
        let (ctx, transport) = test_ctx(shared.clone());
        ctx.send(1, Bytes::from_static(b"hello")).unwrap();
        let tx = shared.worker_metrics[0].snapshot();
        let rx = shared.worker_metrics[1].snapshot();
        assert_eq!(tx.bytes_tx, 5);
        assert_eq!(tx.msgs_tx, 1);
        assert_eq!(rx.bytes_rx, 5);
        assert_eq!(rx.msgs_rx, 1);
        // In-process delivery adds no framing: wire bytes == payload bytes.
        assert_eq!(tx.wire_tx_bytes, 5);
        assert_eq!(rx.wire_rx_bytes, 5);
        // Non-blocking sends charge wire occupancy only (no propagation
        // latency).
        assert_eq!(
            tx.comm_tx_ns,
            shared.net.occupancy_ns(5),
            "non-blocking send must charge occupancy"
        );
        assert!(matches!(
            transport.recv(1, Duration::from_secs(1)).unwrap(),
            Frame::User { from: 0, .. }
        ));
    }

    #[test]
    fn send_to_client_uses_client_metrics() {
        let shared = test_shared(1, 0);
        let (ctx, transport) = test_ctx(shared.clone());
        ctx.send(CLIENT, Bytes::from_static(b"result")).unwrap();
        assert_eq!(shared.client_metrics.snapshot().bytes_rx, 6);
        assert!(transport.recv(CLIENT, Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn unknown_node_rejected() {
        let shared = test_shared(2, 0);
        let (ctx, _transport) = test_ctx(shared);
        assert_eq!(
            ctx.send(99, Bytes::new()),
            Err(ClusterError::UnknownNode(99))
        );
    }

    #[test]
    fn drop_injection_swallows_nth_message() {
        let shared = test_shared(2, 2); // drop every 2nd message
        let (ctx, transport) = test_ctx(shared.clone());
        for _ in 0..4 {
            ctx.send(1, Bytes::from_static(b"x")).unwrap();
        }
        // 2 of 4 delivered.
        let mut delivered = 0;
        while transport.recv(1, Duration::from_millis(10)).is_ok() {
            delivered += 1;
        }
        assert_eq!(delivered, 2);
        let s = shared.worker_metrics[1].snapshot();
        assert_eq!(s.msgs_rx, 2);
        assert_eq!(shared.worker_metrics[0].snapshot().msgs_tx, 4);
    }

    #[test]
    fn time_compute_records_duration() {
        let shared = test_shared(1, 0);
        let (ctx, _transport) = test_ctx(shared.clone());
        let v = ctx.time_compute(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(shared.worker_metrics[0].snapshot().compute_ns >= 1_000_000);
    }

    #[test]
    fn spin_sleep_is_accurate_enough() {
        let t0 = Instant::now();
        spin_sleep(500_000); // 0.5 ms
        let elapsed = t0.elapsed().as_nanos() as u64;
        assert!(elapsed >= 500_000, "slept only {elapsed} ns");
        assert!(elapsed < 50_000_000, "oversleep: {elapsed} ns");
    }

    #[test]
    fn send_after_transport_shutdown_rejected() {
        let shared = test_shared(1, 0);
        let (ctx, transport) = test_ctx(shared);
        transport.shutdown();
        assert_eq!(ctx.send(0, Bytes::new()), Err(ClusterError::ShutDown));
    }
}
