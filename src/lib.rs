//! # Harmony
//!
//! A scalable distributed vector database for high-throughput approximate
//! nearest neighbor search — a full Rust reproduction of the SIGMOD 2025
//! paper (arXiv:2506.14707).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`index`] — single-node substrate: distance kernels, k-means, Flat and
//!   IVF-Flat indexes,
//! * [`cluster`] — the simulated multi-node runtime with its network cost
//!   model and metrics,
//! * [`data`] — synthetic datasets, paper-dataset analogs, workload
//!   generators, ground truth and recall,
//! * [`core`] — Harmony itself: multi-granularity partitioning, the cost
//!   model, load-aware routing, dimension-level pruning and the pipelined
//!   execution engine,
//! * [`baseline`] — the Faiss-like and Auncel-like comparison systems.
//!
//! ## Quickstart
//!
//! ```
//! use harmony::prelude::*;
//!
//! // 10k random 32-d vectors.
//! let dataset = SyntheticSpec::gaussian(10_000, 32).with_seed(7).generate();
//!
//! // Build a 4-worker Harmony deployment.
//! let config = HarmonyConfig::builder()
//!     .n_machines(4)
//!     .nlist(64)
//!     .build()
//!     .unwrap();
//! let engine = HarmonyEngine::build(config, &dataset.base).unwrap();
//!
//! // Search.
//! let results = engine
//!     .search(dataset.queries.row(0), &SearchOptions::new(10).with_nprobe(8))
//!     .unwrap();
//! assert_eq!(results.neighbors.len(), 10);
//! engine.shutdown().unwrap();
//! ```

pub use harmony_baseline as baseline;
pub use harmony_cluster as cluster;
pub use harmony_core as core;
pub use harmony_data as data;
pub use harmony_index as index;

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use harmony_baseline::{AuncelEngine, FaissLikeEngine};
    pub use harmony_cluster::{
        ClusterConfig, CommMode, DelayMode, NetworkModel, TcpOptions, TransportKind,
    };
    pub use harmony_core::{
        CompactionReport, EngineMode, HarmonyConfig, HarmonyEngine, MigrationReport,
        NamespaceConfig, PartitionPlan, ReplanConfig, ReplanOutcome, SearchOptions,
    };
    pub use harmony_data::{DatasetAnalog, SyntheticSpec, Workload, WorkloadSpec};
    pub use harmony_index::{
        BlockRepr, DimRange, FlatIndex, IvfIndex, IvfParams, Metric, Neighbor, Temperature, TopK,
        VectorStore,
    };
}
