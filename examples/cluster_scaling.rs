//! Scaling a deployment from 2 to 16 workers and watching the partition
//! plan, throughput, and per-node memory evolve — the operational view an
//! adopter cares about before provisioning a cluster (paper §6.5.2).
//!
//! ```sh
//! cargo run --release --example cluster_scaling
//! ```

use harmony::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SyntheticSpec::clustered(40_000, 128, 64)
        .with_seed(5)
        .generate();
    println!(
        "dataset: {} vectors x {} dims\n",
        dataset.len(),
        dataset.dim()
    );
    let queries = dataset
        .queries
        .gather(&(0..128.min(dataset.queries.len())).collect::<Vec<_>>());
    let opts = SearchOptions::new(10).with_nprobe(16);

    println!(
        "{:>8} {:>10} {:>14} {:>16} {:>18}",
        "workers", "plan", "modeled QPS", "max node MiB", "bytes shipped MiB"
    );
    for workers in [2, 4, 8, 16] {
        let config = HarmonyConfig::builder()
            .n_machines(workers)
            .nlist(200)
            .seed(3)
            .build()?;
        let engine = HarmonyEngine::build(config, &dataset.base)?;
        let batch = engine.search_batch(&queries, &opts)?;
        let stats = engine.collect_stats()?;
        println!(
            "{workers:>8} {:>10} {:>14.0} {:>16.1} {:>18.1}",
            engine.plan().label(),
            batch.qps_modeled(),
            stats.max_worker_memory_bytes() as f64 / (1024.0 * 1024.0),
            engine.build_stats().bytes_shipped as f64 / (1024.0 * 1024.0),
        );
        engine.shutdown()?;
    }
    println!("\nper-node memory shrinks ~linearly with workers; the planner");
    println!("re-factorizes the grid as the machine count grows.");
    Ok(())
}
