//! Flash-sale scenario: an e-commerce recommendation service whose query
//! traffic suddenly concentrates on one product region — the paper's
//! motivating skewed-workload case (§1 cites Alibaba's shopping festival).
//!
//! The example compares classic vector partitioning against Harmony under a
//! traffic spike aimed at one shard's clusters, showing vector-mode
//! throughput collapse while Harmony stays level — then simulates the
//! sale's *client side*: 8 storefront threads firing small search requests
//! at one shared engine over a realistic-latency fabric, comparing
//! serialized access (one request in flight cluster-wide, the old engine
//! contract) against concurrent search sessions.
//!
//! ```sh
//! cargo run --release --example flash_sale
//! ```

use std::sync::Mutex;
use std::time::Instant;

use harmony::core::EngineMode;
use harmony::prelude::*;
use rand::prelude::*;

/// Queries drawn near the clusters of one (hot) shard with probability
/// `hot_fraction`.
fn traffic(engine: &HarmonyEngine, hot_fraction: f64, n: usize, seed: u64) -> VectorStore {
    let centroids = engine.centroids();
    let shard_clusters = engine.shard_clusters();
    let hot = &shard_clusters[0];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = VectorStore::with_capacity(centroids.dim(), n);
    for i in 0..n {
        let cluster = if rng.random_bool(hot_fraction) {
            hot[rng.random_range(0..hot.len())] as usize
        } else {
            rng.random_range(0..centroids.len())
        };
        let mut q = centroids.row(cluster).to_vec();
        for x in q.iter_mut() {
            *x += rng.random_range(-0.02..0.02f32);
        }
        queries.push(i as u64, &q).expect("dims ok");
    }
    queries
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Product-embedding-like catalog: 30k x 96-d, clustered.
    let catalog = SyntheticSpec::clustered(30_000, 96, 64)
        .with_seed(2024)
        .generate();
    println!("catalog: {} items x {} dims", catalog.len(), catalog.dim());

    let build = |mode: EngineMode| -> Result<HarmonyEngine, Box<dyn std::error::Error>> {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(128)
            .mode(mode)
            .seed(7)
            .build()?;
        Ok(HarmonyEngine::build(config, &catalog.base)?)
    };
    let vector = build(EngineMode::HarmonyVector)?;
    let harmony = build(EngineMode::Harmony)?;
    println!(
        "engines: vector plan {}, harmony plan {}",
        vector.plan().label(),
        harmony.plan().label()
    );

    let opts = SearchOptions::new(10).with_nprobe(4);
    println!(
        "\n{:<22} {:>14} {:>14} {:>12}",
        "traffic", "vector QPS", "harmony QPS", "vector σ(ms)"
    );
    for (label, hot) in [
        ("normal (uniform)", 0.0),
        ("sale ramp (50% hot)", 0.5),
        ("flash sale (95% hot)", 0.95),
    ] {
        let queries = traffic(&vector, hot, 400, 99 + (hot * 100.0) as u64);
        let v = vector.search_batch(&queries, &opts)?;
        let h = harmony.search_batch(&queries, &opts)?;
        println!(
            "{label:<22} {:>14.0} {:>14.0} {:>12.3}",
            v.qps_modeled(),
            h.qps_modeled(),
            v.load_imbalance() / 1e6,
        );
    }
    println!("\nvector-based partitioning saturates the hot machine during the sale;");
    println!("Harmony's grid + pruning keeps every machine busy.");

    vector.shutdown()?;
    harmony.shutdown()?;

    // --- Concurrent storefront clients --------------------------------
    // During the sale, requests come from many frontend threads at once,
    // each a small batch. Model a remote cluster by injecting the 0.5 ms
    // blocking send latency for real: a serialized client waits out each
    // request's network time alone, concurrent sessions overlap them.
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(128)
        .seed(7)
        .pipeline(false) // blocking transport: senders really wait
        .net(NetworkModel {
            bandwidth_gbps: f64::INFINITY,
            latency_ns: 500_000,
            per_message_overhead_bytes: 0,
        })
        .delay(DelayMode::Sleep { scale: 1.0 })
        .build()?;
    let engine = HarmonyEngine::build(config, &catalog.base)?;
    let clients = 8;
    let requests_per_client = 24;
    let request_size = 4;
    let streams: Vec<Vec<VectorStore>> = (0..clients)
        .map(|t| {
            (0..requests_per_client)
                .map(|r| traffic(&engine, 0.95, request_size, 7_000 + (t * 100 + r) as u64))
                .collect()
        })
        .collect();
    let total = (clients * requests_per_client * request_size) as f64;

    let gate = Mutex::new(());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for stream in &streams {
            let (engine, opts, gate) = (&engine, &opts, &gate);
            s.spawn(move || {
                for batch in stream {
                    let _one_at_a_time = gate.lock().expect("gate");
                    engine
                        .search_batch(batch, opts)
                        .expect("serialized request");
                }
            });
        }
    });
    let serialized_qps = total / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for stream in &streams {
            let (engine, opts) = (&engine, &opts);
            s.spawn(move || {
                for batch in stream {
                    engine.search_batch(batch, opts).expect("session request");
                }
            });
        }
    });
    let sessions_qps = total / t0.elapsed().as_secs_f64();

    println!(
        "\n{clients} storefront threads x {requests_per_client} requests x {request_size} queries, 0.5 ms fabric:"
    );
    println!("  serialized client (old contract): {serialized_qps:>8.0} QPS aggregate");
    println!("  concurrent sessions:              {sessions_qps:>8.0} QPS aggregate");
    println!(
        "  -> {:.1}x from multiplexing sessions over the same 4 workers",
        sessions_qps / serialized_qps
    );
    engine.shutdown()?;

    // --- Adaptive replanning under the drift ---------------------------
    // The sale *is* workload drift: an engine deployed on vector
    // partitioning (fine before the sale) is stuck on a stale layout when
    // the spike hits. With the plan supervisor on, the engine observes its
    // own probe counters and live-migrates to a layout that fits the hot
    // traffic — no restart, no lost queries.
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(128)
        .mode(EngineMode::HarmonyVector)
        .seed(7)
        .replan(harmony::core::ReplanConfig {
            min_window_queries: 64,
            amortize_windows: 200.0,
            ..harmony::core::ReplanConfig::default()
        })
        .build()?;
    let adaptive = HarmonyEngine::build(config, &catalog.base)?;
    println!(
        "\nadaptive engine: initial plan {} (epoch {})",
        adaptive.plan().label(),
        adaptive.current_epoch()
    );
    let sale = traffic(&adaptive, 0.95, 400, 4242);
    let stale = adaptive.search_batch(&sale, &opts)?;
    println!(
        "  flash sale on the stale plan: {:>8.0} QPS",
        stale.qps_modeled()
    );
    match adaptive.supervisor_tick()? {
        harmony::core::ReplanOutcome::Switched(r) => println!(
            "  supervisor: switched {} -> {} (epoch {}), moved {} clusters, ~{} KiB over the fabric",
            r.from_plan.label(),
            r.to_plan.label(),
            r.to_epoch,
            r.clusters_moved,
            r.modeled_bytes / 1024
        ),
        other => println!("  supervisor: {other:?}"),
    }
    let replanned = adaptive.search_batch(&sale, &opts)?;
    println!(
        "  flash sale after replanning:  {:>8.0} QPS on plan {}",
        replanned.qps_modeled(),
        adaptive.plan().label()
    );
    adaptive.shutdown()?;
    Ok(())
}
