//! Semantic text search: cosine similarity over embedding-like vectors.
//!
//! Demonstrates the inner-product/cosine path, where Harmony's pruning uses
//! the Cauchy–Schwarz residual bound instead of L2 monotonicity, and recall
//! is verified against exact search.
//!
//! ```sh
//! cargo run --release --example semantic_search
//! ```

use harmony::data::ground_truth;
use harmony::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GloVe-like text embeddings: diffuse clusters, 200-d, normalized.
    let mut dataset = SyntheticSpec::clustered(15_000, 200, 48)
        .with_seed(11)
        .with_spread(0.3)
        .generate();
    dataset.base.normalize();
    dataset.queries.normalize();
    println!(
        "corpus: {} documents x {} dims (normalized)",
        dataset.len(),
        dataset.dim()
    );

    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(96)
        .metric(Metric::Cosine)
        .build()?;
    let engine = HarmonyEngine::build(config, &dataset.base)?;
    println!("plan: {}", engine.plan().label());

    // Recall sweep against exact cosine search.
    let queries = dataset.queries.gather(&(0..64).collect::<Vec<_>>());
    let truth = ground_truth(&dataset.base, &queries, 10, Metric::Cosine);
    println!("\n{:>7} {:>9} {:>12}", "nprobe", "recall@10", "modeled QPS");
    for nprobe in [2, 8, 24, 96] {
        let opts = SearchOptions::new(10).with_nprobe(nprobe);
        let batch = engine.search_batch(&queries, &opts)?;
        let recall = harmony::data::recall_at_k(&truth, &batch.results, 10);
        println!("{nprobe:>7} {recall:>9.4} {:>12.0}", batch.qps_modeled());
    }

    // Show one result list with similarity scores (scores are negated
    // similarities internally; flip the sign for display).
    let opts = SearchOptions::new(5).with_nprobe(24);
    let result = engine.search(queries.row(0), &opts)?;
    println!("\nnearest documents for query 0:");
    for n in &result.neighbors {
        println!("  doc {:>6}  cosine {:.4}", n.id, -n.score);
    }

    engine.shutdown()?;
    Ok(())
}
