//! Quickstart: build a 4-worker Harmony deployment over synthetic data and
//! run a few searches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harmony::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20k random 64-dimensional vectors in 32 clusters, plus a query set.
    let dataset = SyntheticSpec::clustered(20_000, 64, 32)
        .with_seed(42)
        .generate();
    println!(
        "dataset: {} vectors x {} dims, {} queries",
        dataset.len(),
        dataset.dim(),
        dataset.queries.len()
    );

    // A 4-machine deployment; the cost model picks the partition grid.
    let config = HarmonyConfig::builder().n_machines(4).nlist(128).build()?;
    let engine = HarmonyEngine::build(config, &dataset.base)?;
    println!(
        "built: plan {}, train {:?}, add {:?}, pre-assign {:?}",
        engine.plan().label(),
        engine.build_stats().train,
        engine.build_stats().add,
        engine.build_stats().preassign,
    );

    // Single query.
    let opts = SearchOptions::new(10).with_nprobe(16);
    let result = engine.search(dataset.queries.row(0), &opts)?;
    println!("\ntop-10 for query 0:");
    for n in &result.neighbors {
        println!("  id {:>6}  distance² {:.4}", n.id, n.score);
    }

    // Batch of 100 queries with recall scoring.
    let queries = dataset.base.gather(&(0..100).collect::<Vec<_>>());
    let batch = engine.search_batch(&queries, &opts)?;
    let self_hits = batch
        .results
        .iter()
        .enumerate()
        .filter(|(i, r)| r.first().is_some_and(|n| n.id == *i as u64))
        .count();
    println!(
        "\nbatch: {} queries, {self_hits}/100 found themselves first, \
         modeled {:.0} QPS (wall {:.0} QPS)",
        batch.results.len(),
        batch.qps_modeled(),
        batch.qps_wall(),
    );

    // How much work did pruning save?
    let stats = engine.collect_stats()?;
    println!(
        "pruning: cumulative per-slice ratios {:?} %, {:.1}% of scan work skipped",
        stats
            .slices
            .cumulative_ratios()
            .iter()
            .map(|r| (*r * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        stats.slices.work_saved_percent(),
    );

    engine.shutdown()?;
    Ok(())
}
