//! Transport parity: the in-process channel fabric and the real loopback
//! TCP fabric must be *observationally identical*. The cost model, delay
//! injection, and metric charging all live above the [`Transport`] trait,
//! so as long as both backends deliver frames reliably and in per-
//! destination FIFO order, every search must return bit-identical top-k
//! results — even with four concurrent sessions in flight and a live
//! migration rewriting the layout underneath them.

use harmony::core::PartitionPlan;
use harmony::prelude::*;

const WORKERS: usize = 4;
const SESSIONS: usize = 4;
const QUERIES_PER_SESSION: usize = 24;

/// One session's ranked results for its whole batch.
type SessionResults = Vec<Vec<Neighbor>>;

fn dataset() -> harmony::data::Dataset {
    SyntheticSpec::clustered(2_000, 32, 8)
        .with_seed(97)
        .generate()
}

fn build_engine(
    d: &harmony::data::Dataset,
    transport: TransportKind,
    repr: BlockRepr,
) -> HarmonyEngine {
    // balanced_load(false) keeps packing and dimension-block rotation
    // row-deterministic, so float summation order — and therefore result
    // bits — depends only on the layout, never on scheduling.
    let config = HarmonyConfig::builder()
        .n_machines(WORKERS)
        .nlist(32)
        .seed(7)
        .balanced_load(false)
        .transport(transport)
        .repr(repr)
        .build()
        .unwrap();
    HarmonyEngine::build(config, &d.base).unwrap()
}

fn session_batches(d: &harmony::data::Dataset) -> Vec<VectorStore> {
    (0..SESSIONS)
        .map(|t| {
            let rows: Vec<usize> = (0..QUERIES_PER_SESSION)
                .map(|i| (t * 977 + i * 31) % d.base.len())
                .collect();
            d.base.gather(&rows)
        })
        .collect()
}

/// Runs the full scenario on one transport: four concurrent sessions
/// before the migration, the same four sessions querying *while* a live
/// migration to pure dimension partitioning is in flight, and the same
/// four sessions again on the settled post-migration layout.
fn run_scenario(
    transport: TransportKind,
    repr: BlockRepr,
) -> (Vec<SessionResults>, Vec<SessionResults>) {
    let d = dataset();
    let engine = build_engine(&d, transport, repr);
    let batches = session_batches(&d);
    let opts = SearchOptions::new(10).with_nprobe(8);

    let run_concurrent = |label: &str| -> Vec<SessionResults> {
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .iter()
                .map(|b| {
                    let (engine, opts) = (&engine, &opts);
                    s.spawn(move || engine.search_batch(b, opts).unwrap().results)
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| panic!("{label} session panicked"))
                })
                .collect()
        })
    };

    let pre = run_concurrent("pre-migration");

    // Live migration with all four sessions hammering the engine. The
    // in-flight batches route by epoch, so none may lose or duplicate
    // results; their bits are not compared (they may legally land on
    // either side of the epoch switch).
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for b in &batches {
            let (engine, opts, stop) = (&engine, &opts, &stop);
            handles.push(s.spawn(move || {
                let mut served = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || served == 0 {
                    let out = engine.search_batch(b, opts).unwrap();
                    assert_eq!(out.results.len(), b.len(), "lost results mid-migration");
                    for r in &out.results {
                        let mut ids: Vec<u64> = r.iter().map(|n| n.id).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        assert_eq!(ids.len(), r.len(), "duplicated results mid-migration");
                    }
                    served += out.results.len();
                }
            }));
        }
        let report = engine
            .migrate_to(PartitionPlan::pure_dimension(WORKERS))
            .expect("live migration");
        assert!(
            report.to_plan.dim_blocks == WORKERS,
            "unexpected target plan"
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().expect("live session");
        }
    });
    assert_eq!(
        engine.plan(),
        PartitionPlan::pure_dimension(WORKERS),
        "migration must have activated the dimension plan"
    );

    let post = run_concurrent("post-migration");
    engine.shutdown().unwrap();
    (pre, post)
}

fn assert_bit_identical(a: &[SessionResults], b: &[SessionResults], phase: &str) {
    assert_eq!(a.len(), b.len(), "{phase}: session counts differ");
    for (t, (sa, sb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            sa.len(),
            sb.len(),
            "{phase}: session {t} batch sizes differ"
        );
        for (qi, (ra, rb)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                ra.len(),
                rb.len(),
                "{phase}: session {t} query {qi} lengths differ"
            );
            for (na, nb) in ra.iter().zip(rb) {
                assert_eq!(
                    na.id, nb.id,
                    "{phase}: session {t} query {qi} ids diverge across transports"
                );
                assert_eq!(
                    na.score.to_bits(),
                    nb.score.to_bits(),
                    "{phase}: session {t} query {qi} score bits diverge for id {}",
                    na.id
                );
            }
        }
    }
}

#[test]
fn tcp_and_inproc_transports_yield_bit_identical_topk() {
    let (pre_inproc, post_inproc) = run_scenario(TransportKind::InProc, BlockRepr::F32);
    let (pre_tcp, post_tcp) = run_scenario(TransportKind::tcp(), BlockRepr::F32);

    assert_bit_identical(&pre_inproc, &pre_tcp, "pre-migration");
    assert_bit_identical(&post_inproc, &post_tcp, "post-migration");

    // The migration must actually have changed the layout — otherwise the
    // post-phase comparison would be vacuous re-runs of the pre-phase.
    assert_ne!(
        pre_inproc[0][0]
            .iter()
            .map(|n| n.score.to_bits())
            .collect::<Vec<_>>(),
        Vec::<u32>::new(),
        "pre-phase produced empty results"
    );
}

/// Same contract under the SQ8 representation: quantized blocks travel the
/// TCP fabric (and the migration pipeline slices them segment-wise), so
/// bit-identical top-k across transports proves the int8 codes, per-segment
/// affine parameters, and carried quantization-error bounds all survive
/// framing and live migration byte-for-byte.
#[test]
fn tcp_and_inproc_transports_yield_bit_identical_topk_sq8() {
    let (pre_inproc, post_inproc) = run_scenario(TransportKind::InProc, BlockRepr::Sq8);
    let (pre_tcp, post_tcp) = run_scenario(TransportKind::tcp(), BlockRepr::Sq8);

    assert_bit_identical(&pre_inproc, &pre_tcp, "sq8 pre-migration");
    assert_bit_identical(&post_inproc, &post_tcp, "sq8 post-migration");
}
