//! Property-based tests of the core correctness invariant: every Harmony
//! deployment — any partition grid, any switch combination — returns the
//! same top-k as a single-node IVF index with the same clustering, and
//! early-stop pruning never changes results.

use harmony::core::EngineMode;
use harmony::prelude::*;
use proptest::prelude::*;

fn random_store(n: usize, dim: usize, seed: u64) -> VectorStore {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * dim).map(|_| rng.random_range(-1.0..1.0)).collect();
    VectorStore::from_flat(dim, data).unwrap()
}

/// Compares result lists, tolerating tie swaps from f32 reassociation
/// (block-wise partial sums differ from single-pass sums in the last ulps).
fn assert_equivalent(a: &[Neighbor], b: &[Neighbor]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        if x.id != y.id {
            assert!(
                (x.score - y.score).abs() <= 1e-3 * x.score.abs().max(1.0),
                "ids differ with distinct scores: {x:?} vs {y:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case spins up real worker threads
        .. ProptestConfig::default()
    })]

    #[test]
    fn harmony_matches_single_node_ivf(
        seed in 0u64..1000,
        vec_shards in 1usize..4,
        dim_blocks in 1usize..4,
        nprobe in 1usize..16,
        k in 1usize..20,
    ) {
        let n = 800;
        let dim = 16;
        let base = random_store(n, dim, seed);
        let queries = random_store(8, dim, seed ^ 0xABCD);

        // Single-node reference with identical clustering.
        let mut ivf = IvfIndex::train(
            &base,
            &IvfParams::new(16).with_seed(7),
        ).unwrap();
        ivf.add(&base).unwrap();

        let config = HarmonyConfig::builder()
            .n_machines(vec_shards * dim_blocks)
            .nlist(16)
            .plan(PartitionPlan::new(vec_shards, dim_blocks).unwrap())
            .seed(7)
            .build()
            .unwrap();
        let engine = HarmonyEngine::build(config, &base).unwrap();
        let opts = SearchOptions::new(k).with_nprobe(nprobe);

        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let got = engine.search(q, &opts).unwrap().neighbors;
            let want = ivf.search(q, k, nprobe).unwrap();
            assert_equivalent(&got, &want);
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn pruning_is_exact(
        seed in 0u64..1000,
        dim_blocks in 2usize..5,
        nprobe in 1usize..12,
    ) {
        let base = random_store(600, 20, seed);
        let queries = random_store(6, 20, seed ^ 0x1234);
        let mk = |pruning: bool| {
            let config = HarmonyConfig::builder()
                .n_machines(dim_blocks)
                .nlist(12)
                .plan(PartitionPlan::new(1, dim_blocks).unwrap())
                .pruning(pruning)
                .seed(3)
                .build()
                .unwrap();
            HarmonyEngine::build(config, &base).unwrap()
        };
        let with = mk(true);
        let without = mk(false);
        let opts = SearchOptions::new(10).with_nprobe(nprobe);
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let a = with.search(q, &opts).unwrap().neighbors;
            let b = without.search(q, &opts).unwrap().neighbors;
            assert_equivalent(&a, &b);
        }
        with.shutdown().unwrap();
        without.shutdown().unwrap();
    }

    #[test]
    fn inner_product_pruning_is_exact(
        seed in 0u64..1000,
    ) {
        // The Cauchy–Schwarz residual bound must be admissible: pruning on
        // and off agree under inner-product scoring.
        let base = random_store(500, 24, seed);
        let queries = random_store(5, 24, seed ^ 0x77);
        let mk = |pruning: bool| {
            let config = HarmonyConfig::builder()
                .n_machines(4)
                .nlist(10)
                .metric(Metric::InnerProduct)
                .plan(PartitionPlan::new(2, 2).unwrap())
                .pruning(pruning)
                .seed(5)
                .build()
                .unwrap();
            HarmonyEngine::build(config, &base).unwrap()
        };
        let with = mk(true);
        let without = mk(false);
        let opts = SearchOptions::new(5).with_nprobe(4);
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let a = with.search(q, &opts).unwrap().neighbors;
            let b = without.search(q, &opts).unwrap().neighbors;
            assert_equivalent(&a, &b);
        }
        with.shutdown().unwrap();
        without.shutdown().unwrap();
    }
}

#[test]
fn modes_are_equivalent_on_fixed_dataset() {
    let base = random_store(1_000, 16, 42);
    let queries = random_store(10, 16, 43);
    let opts = SearchOptions::new(10).with_nprobe(6);
    let mut results: Vec<Vec<Vec<u64>>> = Vec::new();
    for mode in EngineMode::ALL {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .mode(mode)
            .seed(11)
            .build()
            .unwrap();
        let engine = HarmonyEngine::build(config, &base).unwrap();
        let mode_results: Vec<Vec<u64>> = (0..queries.len())
            .map(|qi| {
                engine
                    .search(queries.row(qi), &opts)
                    .unwrap()
                    .neighbors
                    .iter()
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        results.push(mode_results);
        engine.shutdown().unwrap();
    }
    assert_eq!(results[0], results[1], "Harmony vs Harmony-vector");
    assert_eq!(results[0], results[2], "Harmony vs Harmony-dimension");
}
