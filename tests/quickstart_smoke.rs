//! Smoke test mirroring the README / `src/lib.rs` doctest quickstart and
//! `examples/quickstart.rs`: generate data, build a small deployment,
//! search, and shut down. Guards the first path every new user takes.

use harmony::prelude::*;

#[test]
fn quickstart_flow_builds_searches_and_shuts_down() {
    // 10k random 32-d vectors — the exact doctest scenario.
    let dataset = SyntheticSpec::gaussian(10_000, 32).with_seed(7).generate();
    assert_eq!(dataset.len(), 10_000);
    assert_eq!(dataset.dim(), 32);
    assert!(!dataset.queries.is_empty(), "spec must provide a query set");

    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(64)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &dataset.base).unwrap();

    let results = engine
        .search(
            dataset.queries.row(0),
            &SearchOptions::new(10).with_nprobe(8),
        )
        .unwrap();
    assert_eq!(results.neighbors.len(), 10);
    // Scores must come back sorted best-first with finite values.
    for pair in results.neighbors.windows(2) {
        assert!(pair[0].score <= pair[1].score, "unsorted results");
    }
    assert!(results.neighbors.iter().all(|n| n.score.is_finite()));

    // The quickstart example's batch step: self-queries find themselves.
    let queries = dataset.base.gather(&(0..50).collect::<Vec<_>>());
    let batch = engine
        .search_batch(&queries, &SearchOptions::new(10).with_nprobe(64))
        .unwrap();
    assert_eq!(batch.results.len(), 50);
    let self_hits = batch
        .results
        .iter()
        .enumerate()
        .filter(|(i, r)| r.first().is_some_and(|n| n.id == *i as u64))
        .count();
    assert!(
        self_hits >= 49,
        "full-probe self-query should find itself first ({self_hits}/50)"
    );

    engine.shutdown().unwrap();
}
