//! Concurrent multi-client search sessions: N threads sharing one engine
//! must behave exactly like the old serialized client — same results, an
//! `outstanding` load ledger that drains back to zero, one batch deadline
//! instead of one per query, and cosine scores that agree between the
//! client-side prewarm and the worker pipeline.

use harmony::core::CoreError;
use harmony::prelude::*;

fn clustered(n: usize, dim: usize, seed: u64) -> harmony::data::Dataset {
    SyntheticSpec::clustered(n, dim, 8)
        .with_seed(seed)
        .generate()
}

/// Exact comparison: concurrent sessions must not perturb result bits.
fn assert_bit_identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: batch sizes differ");
    for (qi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{label}: query {qi} lengths differ");
        for (nx, ny) in x.iter().zip(y) {
            assert_eq!(nx.id, ny.id, "{label}: query {qi} ids differ");
            assert_eq!(
                nx.score.to_bits(),
                ny.score.to_bits(),
                "{label}: query {qi} scores differ for id {}",
                nx.id
            );
        }
    }
}

#[test]
fn concurrent_sessions_are_bit_identical_to_serialized_runs() {
    let d = clustered(3_000, 24, 42);
    // balanced_load(false) keeps the dimension-block rotation purely
    // row-deterministic, so even float summation order is reproducible.
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .seed(7)
        .balanced_load(false)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let opts = SearchOptions::new(10).with_nprobe(4);

    let batches: Vec<VectorStore> = (0..4)
        .map(|t| {
            let rows: Vec<usize> = (0..32).map(|i| (t * 131 + i * 17) % d.base.len()).collect();
            d.base.gather(&rows)
        })
        .collect();

    // Serialized baseline: one session at a time.
    let serial: Vec<_> = batches
        .iter()
        .map(|b| engine.search_batch(b, &opts).unwrap().results)
        .collect();

    // Concurrent: all four batches in flight at once, twice over.
    for round in 0..2 {
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .iter()
                .map(|b| s.spawn(|| engine.search_batch(b, &opts).unwrap().results))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, (se, co)) in serial.iter().zip(&concurrent).enumerate() {
            assert_bit_identical(se, co, &format!("round {round} thread {t}"));
        }
    }
    engine.shutdown().unwrap();
}

#[test]
fn concurrent_sessions_over_tcp_match_inproc_bits() {
    let d = clustered(3_000, 24, 42);
    let build = |transport: TransportKind| {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .seed(7)
            .balanced_load(false)
            .transport(transport)
            .build()
            .unwrap();
        HarmonyEngine::build(config, &d.base).unwrap()
    };
    let opts = SearchOptions::new(10).with_nprobe(4);
    let batches: Vec<VectorStore> = (0..4)
        .map(|t| {
            let rows: Vec<usize> = (0..32).map(|i| (t * 131 + i * 17) % d.base.len()).collect();
            d.base.gather(&rows)
        })
        .collect();

    // Reference bits from a serialized run on the in-process fabric.
    let inproc = build(TransportKind::InProc);
    let serial: Vec<_> = batches
        .iter()
        .map(|b| inproc.search_batch(b, &opts).unwrap().results)
        .collect();
    inproc.shutdown().unwrap();

    // Four concurrent sessions multiplexed over real loopback sockets must
    // reproduce them exactly: the cost model sits above the transport, so
    // the fabric may not perturb a single bit.
    let tcp = build(TransportKind::tcp());
    let concurrent: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .iter()
            .map(|b| s.spawn(|| tcp.search_batch(b, &opts).unwrap().results))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, (se, co)) in serial.iter().zip(&concurrent).enumerate() {
        assert_bit_identical(se, co, &format!("tcp thread {t}"));
    }
    tcp.shutdown().unwrap();
}

#[test]
fn concurrent_sessions_discharge_outstanding_load_to_zero() {
    let d = clustered(2_000, 16, 11);
    // Non-pipelined dispatch keeps several shard visits of one query in
    // flight simultaneously — the case where discharging the *last
    // dispatched* visit instead of the completing one corrupted the ledger.
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .seed(7)
        .pipeline(false)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let opts = SearchOptions::new(5).with_nprobe(8);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..2 {
                    engine.search_batch(&d.queries, &opts).unwrap();
                }
            });
        }
    });
    let load = engine.outstanding_load();
    let leftover: f64 = load.iter().sum();
    assert!(
        leftover.abs() < 1e-6,
        "outstanding load must return to ~0 after all batches, got {load:?}"
    );
    engine.shutdown().unwrap();
}

#[test]
fn concurrent_cosine_sessions_match_flat_reference_on_unnormalized_input() {
    let d = clustered(1_500, 24, 5);
    // Scale rows by wildly different factors so nothing is normalized:
    // raw dot products and true cosine order candidates differently.
    let mut base = VectorStore::with_capacity(d.base.dim(), d.base.len());
    for row in 0..d.base.len() {
        let scale = 0.25 + (row % 7) as f32;
        let v: Vec<f32> = d.base.row(row).iter().map(|x| x * scale).collect();
        base.push(row as u64, &v).unwrap();
    }
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .metric(Metric::Cosine)
        .mode(harmony::core::EngineMode::HarmonyDimension)
        .seed(7)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &base).unwrap();
    let flat = FlatIndex::from_store(base.clone(), Metric::Cosine);
    let opts = SearchOptions::new(10).with_nprobe(16);

    let queries = &d.queries;
    let results: Vec<Vec<Neighbor>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|qi| {
                let engine = &engine;
                let opts = &opts;
                s.spawn(move || engine.search(queries.row(qi), opts).unwrap().neighbors)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (qi, got) in results.iter().enumerate() {
        let q = d.queries.row(qi);
        // Worker-reported scores must equal the client-side metric exactly
        // (up to float reassociation): the cosine score-parity contract.
        for n in got {
            let want = Metric::Cosine.score(q, base.row(n.id as usize));
            assert!(
                (n.score - want).abs() < 1e-4,
                "query {qi}: engine score {} vs client metric {want} for id {}",
                n.score,
                n.id
            );
        }
        // Full probe must agree with the exact flat scan.
        let want = flat.search(q, 10).unwrap();
        for (x, y) in got.iter().zip(&want) {
            if x.id != y.id {
                assert!(
                    (x.score - y.score).abs() <= 1e-4,
                    "query {qi}: ids differ with distinct scores: {x:?} vs {y:?}"
                );
            }
        }
    }
    engine.shutdown().unwrap();
}

#[test]
fn concurrent_batch_deadline_is_shared_not_per_query() {
    let d = clustered(1_200, 16, 3);
    // Blocking transport + real injected delay: every send stalls its
    // sender 30 ms, so a 12-query batch cannot possibly finish inside a
    // 100 ms deadline. Under the old per-receive timeout, each of the up
    // to 12 receives restarted the full budget and the batch could crawl
    // through Q x timeout; the shared deadline must abort after ~one.
    let net = NetworkModel {
        bandwidth_gbps: f64::INFINITY,
        latency_ns: 30_000_000,
        per_message_overhead_bytes: 0,
    };
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .seed(7)
        .pipeline(false) // blocking comm so the delay is sender-side
        .net(net)
        .delay(DelayMode::Sleep { scale: 1.0 })
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let queries = d.base.gather(&(0..12).collect::<Vec<_>>());
    let opts = SearchOptions::new(5).with_nprobe(4).with_timeout_ms(100);

    let t0 = std::time::Instant::now();
    let err = engine.search_batch(&queries, &opts).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        matches!(
            err,
            CoreError::Cluster(harmony::cluster::ClusterError::Timeout)
        ),
        "expected a batch timeout, got {err:?}"
    );
    // Old behavior could block up to 12 x 100 ms of receive budget plus the
    // send stalls; the shared deadline caps waiting at one budget (plus the
    // in-progress sends). Leave generous CI slack, but far below Q x timeout.
    assert!(
        elapsed < std::time::Duration::from_millis(900),
        "deadline not shared: batch took {elapsed:?}"
    );
    // The failed batch must not leak load estimates.
    let leftover: f64 = engine.outstanding_load().iter().sum();
    assert!(leftover.abs() < 1e-6, "timeout leaked load: {leftover}");
    engine.shutdown().unwrap();
}
