//! End-to-end integration: build → search → recall, across engine modes,
//! metrics, worker counts, and ablation switches.

use harmony::core::EngineMode;
use harmony::data::{ground_truth, recall_at_k};
use harmony::prelude::*;

fn dataset(n: usize, dim: usize, seed: u64) -> harmony::data::Dataset {
    SyntheticSpec::clustered(n, dim, 16)
        .with_seed(seed)
        .with_queries(64)
        .generate()
}

fn build(mode: EngineMode, workers: usize, base: &VectorStore) -> HarmonyEngine {
    let config = HarmonyConfig::builder()
        .n_machines(workers)
        .nlist(32)
        .mode(mode)
        .seed(99)
        .build()
        .unwrap();
    HarmonyEngine::build(config, base).unwrap()
}

#[test]
fn all_modes_reach_high_recall_at_full_probe() {
    let d = dataset(3_000, 24, 1);
    let queries = d.queries.gather(&(0..32).collect::<Vec<_>>());
    let truth = ground_truth(&d.base, &queries, 10, Metric::L2);
    for mode in EngineMode::ALL {
        let engine = build(mode, 4, &d.base);
        let opts = SearchOptions::new(10).with_nprobe(32);
        let batch = engine.search_batch(&queries, &opts).unwrap();
        let recall = recall_at_k(&truth, &batch.results, 10);
        assert!(
            recall > 0.999,
            "{mode}: full-probe recall {recall} below exact"
        );
        engine.shutdown().unwrap();
    }
}

#[test]
fn recall_grows_with_nprobe() {
    let d = dataset(3_000, 24, 2);
    let queries = d.queries.gather(&(0..32).collect::<Vec<_>>());
    let truth = ground_truth(&d.base, &queries, 10, Metric::L2);
    let engine = build(EngineMode::Harmony, 4, &d.base);
    let mut prev = 0.0;
    for nprobe in [1, 4, 16, 32] {
        let opts = SearchOptions::new(10).with_nprobe(nprobe);
        let batch = engine.search_batch(&queries, &opts).unwrap();
        let recall = recall_at_k(&truth, &batch.results, 10);
        assert!(
            recall >= prev - 1e-9,
            "recall regressed at nprobe {nprobe}: {recall} < {prev}"
        );
        prev = recall;
    }
    assert!(prev > 0.999);
    engine.shutdown().unwrap();
}

#[test]
fn worker_counts_do_not_change_results() {
    let d = dataset(2_000, 16, 3);
    let opts = SearchOptions::new(5).with_nprobe(8);
    let reference = build(EngineMode::Harmony, 2, &d.base);
    let wide = build(EngineMode::Harmony, 8, &d.base);
    for qi in 0..10 {
        let q = d.queries.row(qi);
        let a = reference.search(q, &opts).unwrap().neighbors;
        let b = wide.search(q, &opts).unwrap().neighbors;
        let ids = |v: &[Neighbor]| v.iter().map(|n| n.id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "query {qi}");
    }
    reference.shutdown().unwrap();
    wide.shutdown().unwrap();
}

#[test]
fn ablation_switches_do_not_change_results() {
    let d = dataset(2_000, 16, 4);
    let opts = SearchOptions::new(10).with_nprobe(8);
    let mut engines = Vec::new();
    for (balanced, pipeline, pruning) in [
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, true, true),
    ] {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(32)
            .plan(PartitionPlan::new(2, 2).unwrap())
            .balanced_load(balanced)
            .pipeline(pipeline)
            .pruning(pruning)
            .seed(99)
            .build()
            .unwrap();
        engines.push(HarmonyEngine::build(config, &d.base).unwrap());
    }
    for qi in 0..8 {
        let q = d.queries.row(qi);
        let reference: Vec<u64> = engines[0]
            .search(q, &opts)
            .unwrap()
            .neighbors
            .iter()
            .map(|n| n.id)
            .collect();
        for (ei, engine) in engines.iter().enumerate().skip(1) {
            let got: Vec<u64> = engine
                .search(q, &opts)
                .unwrap()
                .neighbors
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(got, reference, "engine variant {ei}, query {qi}");
        }
    }
    for e in engines {
        e.shutdown().unwrap();
    }
}

#[test]
fn cosine_metric_end_to_end() {
    let mut d = dataset(2_000, 32, 5);
    d.base.normalize();
    d.queries.normalize();
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(32)
        .metric(Metric::Cosine)
        .seed(99)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let queries = d.queries.gather(&(0..16).collect::<Vec<_>>());
    let truth = ground_truth(&d.base, &queries, 5, Metric::Cosine);
    let batch = engine
        .search_batch(&queries, &SearchOptions::new(5).with_nprobe(32))
        .unwrap();
    let recall = recall_at_k(&truth, &batch.results, 5);
    assert!(recall > 0.99, "cosine full-probe recall {recall}");
    engine.shutdown().unwrap();
}

#[test]
fn faiss_baseline_agrees_with_harmony_at_full_probe() {
    let d = dataset(1_500, 16, 6);
    let faiss = FaissLikeEngine::build(32, Metric::L2, 99, &d.base).unwrap();
    let engine = build(EngineMode::Harmony, 4, &d.base);
    let opts = SearchOptions::new(10).with_nprobe(32);
    for qi in 0..10 {
        let q = d.queries.row(qi);
        let a: Vec<u64> = faiss
            .search(q, 10, 32)
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        let b: Vec<u64> = engine
            .search(q, &opts)
            .unwrap()
            .neighbors
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(a, b, "query {qi}");
    }
    engine.shutdown().unwrap();
}

#[test]
fn auncel_respects_error_bound_end_to_end() {
    let d = dataset(2_000, 16, 7);
    let engine = AuncelEngine::build(
        harmony::baseline::AuncelConfig {
            nlist: 32,
            epsilon: 0.1,
            seed: 99,
            ..Default::default()
        },
        &d.base,
    )
    .unwrap();
    let queries = d.queries.gather(&(0..16).collect::<Vec<_>>());
    let truth = ground_truth(&d.base, &queries, 5, Metric::L2);
    for (qi, query_truth) in truth.iter().enumerate() {
        let got = engine.search(queries.row(qi), 5).unwrap();
        let bound = query_truth[4].score * 1.1 + 1e-6;
        for n in &got.neighbors {
            assert!(n.score <= bound, "query {qi}: {} > {bound}", n.score);
        }
    }
    engine.shutdown().unwrap();
}

#[test]
fn build_stats_and_engine_stats_are_consistent() {
    let d = dataset(2_000, 32, 8);
    let engine = build(EngineMode::Harmony, 4, &d.base);
    assert_eq!(engine.build_stats().plan.machines(), 4);
    assert!(engine.build_stats().bytes_shipped > 0);
    let _ = engine
        .search_batch(&d.queries, &SearchOptions::new(10).with_nprobe(8))
        .unwrap();
    let stats = engine.collect_stats().unwrap();
    assert!(stats.total_memory_bytes() >= (2_000 * 32 * 4) as u64 / 2);
    assert!(stats.scanned_point_dims > 0);
    engine.reset_stats().unwrap();
    let stats = engine.collect_stats().unwrap();
    assert_eq!(stats.scanned_point_dims, 0);
    engine.shutdown().unwrap();
}
