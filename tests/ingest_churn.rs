//! Ingest churn: the mutable-shard lifecycle end to end. Fresh upserts
//! land in per-shard delta lists and are scanned *exactly* (full f32, no
//! quantization), so a query equal to a fresh vector must rank it first —
//! recall@10 on fresh data is 1.0 by construction. Soft deletes are
//! tombstones consulted at result-merge time, so a deleted id never
//! appears in any result even though its rows are still stored.
//! Compaction folds the deltas into their home IVF lists behind the same
//! epoch handshake as live migration, so the logical live set — and
//! therefore every top-k result, bit for bit — is unchanged before,
//! during, and after a compaction, on both transports and under both
//! block representations.

use harmony::index::persist::{
    load_delta_log, load_ivf, save_delta_log, save_ivf, DeltaLog, DeltaRecord, PersistError,
};
use harmony::index::{IvfIndex, IvfParams};
use harmony::prelude::*;

const WORKERS: usize = 4;
const SESSIONS: usize = 4;
const QUERIES_PER_SESSION: usize = 12;
const FRESH_BASE_ID: u64 = 1_000_000;

type SessionResults = Vec<Vec<Neighbor>>;

fn dataset() -> harmony::data::Dataset {
    SyntheticSpec::clustered(1_500, 24, 8)
        .with_seed(41)
        .generate()
}

fn build_engine(
    d: &harmony::data::Dataset,
    transport: TransportKind,
    repr: BlockRepr,
) -> HarmonyEngine {
    // balanced_load(false) keeps packing row-deterministic so result bits
    // depend only on the logical state, never on scheduling.
    let config = HarmonyConfig::builder()
        .n_machines(WORKERS)
        .nlist(24)
        .seed(7)
        .balanced_load(false)
        .transport(transport)
        .repr(repr)
        .build()
        .unwrap();
    HarmonyEngine::build(config, &d.base).unwrap()
}

/// A fresh vector that exists nowhere in the base set: a base row nudged
/// by an index-dependent offset, so each is unique and its self-query has
/// a strictly smaller L2 distance to itself than to anything else.
fn fresh_vector(d: &harmony::data::Dataset, i: usize) -> Vec<f32> {
    let row = d.base.row((i * 131) % d.base.len());
    row.iter()
        .enumerate()
        .map(|(j, &x)| x + 0.05 + 0.01 * ((i + j) % 7) as f32)
        .collect()
}

fn session_batches(d: &harmony::data::Dataset) -> Vec<VectorStore> {
    (0..SESSIONS)
        .map(|t| {
            let rows: Vec<usize> = (0..QUERIES_PER_SESSION)
                .map(|i| (t * 977 + i * 31) % d.base.len())
                .collect();
            d.base.gather(&rows)
        })
        .collect()
}

fn assert_bit_identical(a: &[SessionResults], b: &[SessionResults], phase: &str) {
    for (t, (sa, sb)) in a.iter().zip(b).enumerate() {
        for (qi, (ra, rb)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                ra.len(),
                rb.len(),
                "{phase}: session {t} query {qi} lengths differ"
            );
            for (na, nb) in ra.iter().zip(rb) {
                assert_eq!(na.id, nb.id, "{phase}: session {t} query {qi} ids diverge");
                assert_eq!(
                    na.score.to_bits(),
                    nb.score.to_bits(),
                    "{phase}: session {t} query {qi} score bits diverge for id {}",
                    na.id
                );
            }
        }
    }
}

fn assert_never_contains(results: &[SessionResults], dead: &[u64], phase: &str) {
    for (t, sr) in results.iter().enumerate() {
        for (qi, r) in sr.iter().enumerate() {
            for n in r {
                assert!(
                    !dead.contains(&n.id),
                    "{phase}: deleted id {} surfaced in session {t} query {qi}",
                    n.id
                );
            }
        }
    }
}

/// Full churn scenario on one (transport, repr) combination:
///
/// 1. upsert 40 fresh vectors, delete 10 base ids and 10 fresh ids,
///    re-upsert 5 of the deleted base ids (supersede path);
/// 2. fresh-data recall: every live fresh vector's self-query ranks it
///    first at distance 0 — recall@10 = 1.0 on fresh data;
/// 3. deleted ids appear in no result, before or after compaction;
/// 4. four concurrent sessions run before, *during* (hammering a live
///    `compact()`), and after compaction — all three phases must agree
///    bit for bit, because compaction changes the physical layout but
///    not the logical live set;
/// 5. a second compaction is a no-op.
fn run_churn_scenario(transport: TransportKind, repr: BlockRepr) {
    let d = dataset();
    let engine = build_engine(&d, transport, repr);
    let batches = session_batches(&d);
    let opts = SearchOptions::new(10).with_nprobe(6);

    // --- Churn ------------------------------------------------------
    for i in 0..40usize {
        engine
            .upsert(FRESH_BASE_ID + i as u64, &fresh_vector(&d, i))
            .unwrap();
    }
    let mut dead: Vec<u64> = Vec::new();
    for i in 0..10usize {
        let base_id = (i * 149 + 3) as u64 % d.base.len() as u64;
        assert!(engine.delete(base_id).unwrap(), "base id was live");
        dead.push(base_id);
        let fresh_id = FRESH_BASE_ID + (i * 3) as u64;
        assert!(engine.delete(fresh_id).unwrap(), "fresh id was live");
        dead.push(fresh_id);
    }
    assert!(
        !engine.delete(dead[0]).unwrap(),
        "double delete must be false"
    );
    // Re-upsert half the deleted base ids: the supersede tombstone must
    // suppress the stale list copy while the new delta row stays visible.
    let mut revived: Vec<u64> = Vec::new();
    for &id in dead.iter().filter(|id| **id < FRESH_BASE_ID).take(5) {
        engine
            .upsert(id, &fresh_vector(&d, 400 + id as usize))
            .unwrap();
        revived.push(id);
    }
    dead.retain(|id| !revived.contains(id));
    assert!(engine.pending_deltas() > 0, "deltas must be pending");
    assert!(engine.tombstone_count() > 0, "tombstones must be pending");

    // --- Fresh-data recall = 1.0 pre-compaction ---------------------
    let check_fresh = |phase: &str| {
        for i in 0..40usize {
            let id = FRESH_BASE_ID + i as u64;
            if dead.contains(&id) {
                continue;
            }
            let res = engine.search(&fresh_vector(&d, i), &opts).unwrap();
            assert_eq!(
                res.neighbors.len(),
                10,
                "{phase}: short result for fresh id {id}"
            );
            assert_eq!(
                res.neighbors[0].id, id,
                "{phase}: fresh id {id} not ranked first by its own vector"
            );
        }
        for (slot, &id) in revived.iter().enumerate() {
            let res = engine
                .search(&fresh_vector(&d, 400 + id as usize), &opts)
                .unwrap();
            assert_eq!(
                res.neighbors[0].id, id,
                "{phase}: revived id {id} (slot {slot}) not ranked first"
            );
        }
    };
    check_fresh("pre-compaction");

    // --- Concurrent phases around a live compaction -----------------
    let run_concurrent = |label: &str| -> Vec<SessionResults> {
        std::thread::scope(|s| {
            let handles: Vec<_> = batches
                .iter()
                .map(|b| {
                    let (engine, opts) = (&engine, &opts);
                    s.spawn(move || engine.search_batch(b, opts).unwrap().results)
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| panic!("{label} session panicked"))
                })
                .collect()
        })
    };

    let pre = run_concurrent("pre-compaction");
    assert_never_contains(&pre, &dead, "pre-compaction");

    // Hammer the engine with all four sessions while compact() publishes
    // the folded epoch; collect every mid-flight result for the
    // bit-identity check below.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mid: Vec<Vec<SessionResults>> = std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .iter()
            .map(|b| {
                let (engine, opts, stop) = (&engine, &opts, &stop);
                s.spawn(move || {
                    let mut runs = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) || runs.is_empty() {
                        let out = engine.search_batch(b, opts).unwrap();
                        assert_eq!(out.results.len(), b.len(), "lost results mid-compaction");
                        runs.push(out.results);
                    }
                    runs
                })
            })
            .collect();
        let report = engine.compact().expect("live compaction");
        assert!(!report.noop, "churned engine must have work to compact");
        assert!(report.folded_rows > 0, "no delta rows folded");
        assert!(report.dropped_tombstones > 0, "no tombstones dropped");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| h.join().expect("mid-compaction session"))
            .collect()
    });

    assert_eq!(engine.pending_deltas(), 0, "compaction must drain deltas");
    assert_eq!(
        engine.tombstone_count(),
        0,
        "compaction must drain tombstones"
    );

    let post = run_concurrent("post-compaction");
    assert_never_contains(&post, &dead, "post-compaction");
    check_fresh("post-compaction");

    // Compaction rewrites the layout but not the logical live set: the
    // pre and post phases must agree bit for bit, and every mid-flight
    // batch (which legally ran on either side of the epoch swap) must
    // match them too.
    assert_bit_identical(&pre, &post, "pre vs post compaction");
    for (t, runs) in mid.iter().enumerate() {
        for results in runs {
            assert_never_contains(std::slice::from_ref(results), &dead, "mid-compaction");
            let wrapped = [results.clone()];
            let expected = [pre[t].clone()];
            assert_bit_identical(&wrapped, &expected, "mid vs pre compaction");
        }
    }

    let report = engine.compact().unwrap();
    assert!(report.noop, "second compaction must be a no-op");
    engine.shutdown().unwrap();
}

#[test]
fn churn_inproc_f32() {
    run_churn_scenario(TransportKind::InProc, BlockRepr::F32);
}

#[test]
fn churn_inproc_sq8() {
    run_churn_scenario(TransportKind::InProc, BlockRepr::Sq8);
}

#[test]
fn churn_tcp_f32() {
    run_churn_scenario(TransportKind::tcp(), BlockRepr::F32);
}

#[test]
fn churn_tcp_sq8() {
    run_churn_scenario(TransportKind::tcp(), BlockRepr::Sq8);
}

/// Crash consistency: a process dies *mid-compaction* — after writing the
/// post-fold checkpoint's tmp file partway, before the atomic rename. The
/// intact pre-compaction checkpoint (base index + delta log) must reload
/// exactly; the torn tmp must be rejected loudly, never replayed as a
/// silently-wrong state; and replaying the log on a fresh engine must
/// reconstruct the exact logical live set.
#[test]
fn crash_mid_compaction_reloads_and_replays() {
    let d = dataset();
    let mut dir = std::env::temp_dir();
    dir.push(format!("harmony-churn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ivf_path = dir.join("base.ivf");
    let log_path = dir.join("delta.log");

    // Pre-compaction checkpoint: the base index and the ingest state.
    let mut ivf = IvfIndex::train(&d.base, &IvfParams::new(24).with_seed(7)).unwrap();
    ivf.add(&d.base).unwrap();
    save_ivf(&ivf, &ivf_path).unwrap();
    assert!(load_ivf(&ivf_path).is_ok(), "base checkpoint must reload");

    let pending: Vec<DeltaRecord> = (0..8u64)
        .map(|i| DeltaRecord {
            id: FRESH_BASE_ID + i,
            cluster: (i % 24) as u32,
            seq: i + 1,
            vector: fresh_vector(&d, i as usize),
        })
        .collect();
    let log = DeltaLog {
        next_seq: 12,
        dim: d.base.dim() as u64,
        tombstones: vec![(3, 9), (FRESH_BASE_ID + 1, 10), (17, 11)],
        pending,
    };
    save_delta_log(&log, &log_path).unwrap();

    // The crash: the post-compaction checkpoint died mid-write, leaving a
    // torn tmp beside the intact log (the rename never happened).
    let intact = std::fs::read(&log_path).unwrap();
    let torn_path = dir.join("delta.log.tmp");
    std::fs::write(&torn_path, &intact[..intact.len() / 2]).unwrap();
    match load_delta_log(&torn_path) {
        Err(PersistError::Io(_) | PersistError::Format(_)) => {}
        other => panic!("torn checkpoint must fail to load, got {other:?}"),
    }

    // Recovery: the intact checkpoint reloads bit-exactly...
    let reloaded = load_delta_log(&log_path).unwrap();
    assert_eq!(reloaded, log, "intact checkpoint must reload exactly");

    // ...and replaying it on a fresh engine reconstructs the live set:
    // pending rows are findable (fresh recall), tombstoned ids are not.
    let engine = build_engine(&d, TransportKind::InProc, BlockRepr::F32);
    for rec in &reloaded.pending {
        engine.upsert(rec.id, &rec.vector).unwrap();
    }
    for &(id, _) in &reloaded.tombstones {
        engine.delete(id).unwrap();
    }
    let opts = SearchOptions::new(10).with_nprobe(6);
    for rec in &reloaded.pending {
        let dead = reloaded.tombstones.iter().any(|&(id, _)| id == rec.id);
        let res = engine.search(&rec.vector, &opts).unwrap();
        if dead {
            assert!(
                res.neighbors.iter().all(|n| n.id != rec.id),
                "tombstoned id {} resurfaced after replay",
                rec.id
            );
        } else {
            assert_eq!(
                res.neighbors[0].id, rec.id,
                "replayed row {} not ranked first by its own vector",
                rec.id
            );
        }
    }
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
