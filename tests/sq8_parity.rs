//! SQ8 two-stage search parity: the quantized stage-1 scan plus exact f32
//! re-rank must recover ≥ 0.99 of the exact pipeline's recall@10 — on both
//! the in-process and the real loopback TCP fabric, and again after a live
//! migration has resliced every quantized block onto a new layout.

use harmony::core::PartitionPlan;
use harmony::prelude::*;

const WORKERS: usize = 4;
const QUERIES: usize = 64;
const K: usize = 10;

fn dataset() -> harmony::data::Dataset {
    // dim 64 keeps every dimension block ≥ 16 wide under a 4-way plan, the
    // regime the SQ8 byte-reduction target assumes.
    SyntheticSpec::clustered(2_000, 64, 8)
        .with_seed(97)
        .generate()
}

fn build_engine(
    d: &harmony::data::Dataset,
    transport: TransportKind,
    repr: BlockRepr,
) -> HarmonyEngine {
    let config = HarmonyConfig::builder()
        .n_machines(WORKERS)
        .nlist(32)
        .seed(7)
        .balanced_load(false)
        .transport(transport)
        .repr(repr)
        .build()
        .unwrap();
    HarmonyEngine::build(config, &d.base).unwrap()
}

fn queries(d: &harmony::data::Dataset) -> VectorStore {
    let rows: Vec<usize> = (0..QUERIES).map(|i| (i * 31) % d.base.len()).collect();
    d.base.gather(&rows)
}

/// Fraction of the f32 pipeline's top-k ids the sq8 pipeline recovers,
/// averaged over the batch.
fn recall_vs(f32_results: &[Vec<Neighbor>], sq8_results: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(f32_results.len(), sq8_results.len());
    let mut hits = 0usize;
    let mut total = 0usize;
    for (fr, qr) in f32_results.iter().zip(sq8_results) {
        total += fr.len();
        for n in fr {
            if qr.iter().any(|m| m.id == n.id) {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Runs both representations through one transport, pre- and post-
/// migration, and checks sq8 recall against the exact pipeline each time.
fn check_transport(transport: TransportKind, label: &str) {
    let d = dataset();
    let q = queries(&d);
    let opts = SearchOptions::new(K).with_nprobe(8);

    let exact = build_engine(&d, transport.clone(), BlockRepr::F32);
    let quant = build_engine(&d, transport, BlockRepr::Sq8);

    let f_pre = exact.search_batch(&q, &opts).unwrap().results;
    let q_pre = quant.search_batch(&q, &opts).unwrap().results;
    let r_pre = recall_vs(&f_pre, &q_pre);
    assert!(
        r_pre >= 0.99,
        "{label}: pre-migration sq8 recall@{K} {r_pre:.4} < 0.99"
    );

    // Live-migrate both engines to a pure dimension layout: sq8 blocks are
    // sliced segment-wise in transit and reassembled on the new owners.
    for engine in [&exact, &quant] {
        let report = engine
            .migrate_to(PartitionPlan::pure_dimension(WORKERS))
            .expect("live migration");
        assert_eq!(report.to_plan.dim_blocks, WORKERS);
    }

    let f_post = exact.search_batch(&q, &opts).unwrap().results;
    let q_post = quant.search_batch(&q, &opts).unwrap().results;
    let r_post = recall_vs(&f_post, &q_post);
    assert!(
        r_post >= 0.99,
        "{label}: post-migration sq8 recall@{K} {r_post:.4} < 0.99"
    );

    exact.shutdown().unwrap();
    quant.shutdown().unwrap();
}

#[test]
fn sq8_recall_matches_f32_inproc() {
    check_transport(TransportKind::InProc, "inproc");
}

#[test]
fn sq8_recall_matches_f32_tcp() {
    check_transport(TransportKind::tcp(), "tcp");
}
