//! Property-based tests of the substrate invariants the distributed layers
//! rely on: distance decomposition, partition coverage, packing, codec
//! round-trips, and top-k semantics.

use harmony::cluster::codec::Wire;
use harmony::core::{PartitionPlan, ShardAssignment, WorkloadProfile};
use harmony::index::distance::{self, DimRange, Metric};
use harmony::prelude::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn partial_scores_reconstruct_full_score(
        dim in 1usize..64,
        blocks in 1usize..8,
        seed in 0u64..10_000,
    ) {
        prop_assume!(blocks <= dim);
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect();
        for metric in [Metric::L2, Metric::InnerProduct] {
            let total: f32 = DimRange::split(dim, blocks)
                .iter()
                .map(|r| distance::partial_score(metric, &a[r.start..r.end], &b[r.start..r.end]))
                .sum();
            let full = match metric {
                Metric::L2 => distance::l2_sq(&a, &b),
                _ => -distance::ip(&a, &b),
            };
            prop_assert!((total - full).abs() <= 1e-3 * full.abs().max(1.0));
        }
    }

    #[test]
    fn l2_partial_sums_are_monotone(
        dim in 2usize..48,
        seed in 0u64..10_000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..dim).map(|_| rng.random_range(-2.0..2.0)).collect();
        let blocks = (dim / 2).clamp(1, 6);
        let mut acc = 0.0f32;
        for r in DimRange::split(dim, blocks) {
            let prev = acc;
            acc += distance::l2_sq(&a[r.start..r.end], &b[r.start..r.end]);
            prop_assert!(acc >= prev, "L2 partial sum decreased");
        }
    }

    #[test]
    fn dim_ranges_partition_exactly(
        dim in 1usize..512,
        blocks in 1usize..16,
    ) {
        prop_assume!(blocks <= dim);
        let ranges = DimRange::split(dim, blocks);
        prop_assert_eq!(ranges.len(), blocks);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next, "gap or overlap");
            next = r.end;
        }
        prop_assert_eq!(next, dim);
        // Near-equal widths: max - min <= 1.
        let widths: Vec<usize> = ranges.iter().map(DimRange::len).collect();
        prop_assert!(widths.iter().max().unwrap() - widths.iter().min().unwrap() <= 1);
    }

    #[test]
    fn machine_grid_is_a_bijection(
        vec_shards in 1usize..8,
        dim_blocks in 1usize..8,
    ) {
        let plan = PartitionPlan::new(vec_shards, dim_blocks).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..vec_shards {
            for b in 0..dim_blocks {
                let m = plan.machine_of(s, b);
                prop_assert!(m < plan.machines());
                prop_assert!(seen.insert(m));
                prop_assert_eq!(plan.block_of(m), (s, b));
            }
        }
    }

    #[test]
    fn lpt_meets_its_makespan_guarantee(
        weights in proptest::collection::vec(0u64..1_000, 1..64),
        shards in 1usize..8,
    ) {
        let lpt = ShardAssignment::balanced(&weights, shards);
        let rr = ShardAssignment::round_robin(&weights, shards);
        // Graham's bound: LPT max load ≤ (4/3 − 1/(3m)) · OPT, and
        // OPT ≥ max(total/m, heaviest item).
        let total: u64 = weights.iter().sum();
        let heaviest = weights.iter().copied().max().unwrap_or(0);
        let opt_lb = (total as f64 / shards as f64).max(heaviest as f64);
        let lpt_max = *lpt.shard_weights.iter().max().unwrap() as f64;
        prop_assert!(
            lpt_max <= (4.0 / 3.0) * opt_lb + 1e-9,
            "LPT max {lpt_max} exceeds 4/3 x lower bound {opt_lb}"
        );
        // Same totals, full coverage, same cluster count.
        prop_assert_eq!(
            lpt.shard_weights.iter().sum::<u64>(),
            rr.shard_weights.iter().sum::<u64>()
        );
        prop_assert_eq!(lpt.cluster_to_shard.len(), weights.len());
    }

    #[test]
    fn topk_matches_sort_oracle(
        entries in proptest::collection::vec((0u64..1_000, -1_000.0f32..1_000.0), 1..128),
        k in 1usize..32,
    ) {
        let mut topk = TopK::new(k);
        for &(id, score) in &entries {
            topk.push(id, score);
        }
        let got = topk.into_sorted();
        let mut oracle: Vec<Neighbor> =
            entries.iter().map(|&(id, s)| Neighbor::new(id, s)).collect();
        oracle.sort_unstable();
        oracle.truncate(k);
        prop_assert_eq!(got, oracle);
    }

    #[test]
    fn codec_roundtrips_arbitrary_payloads(
        floats in proptest::collection::vec(-1e6f32..1e6, 0..256),
        ids in proptest::collection::vec(proptest::num::u64::ANY, 0..64),
        text in "[a-zA-Z0-9 ]{0,64}",
        flag in proptest::bool::ANY,
    ) {
        let value = (floats, (ids, (text, flag)));
        let bytes = value.to_bytes();
        let back = <(Vec<f32>, (Vec<u64>, (String, bool)))>::from_bytes(bytes).unwrap();
        prop_assert_eq!(value, back);
    }

    #[test]
    fn codec_rejects_truncation(
        floats in proptest::collection::vec(-1e3f32..1e3, 1..64),
        cut in 1usize..16,
    ) {
        let bytes = floats.to_bytes();
        prop_assume!(cut < bytes.len());
        let truncated = bytes.slice(0..bytes.len() - cut);
        prop_assert!(Vec::<f32>::from_bytes(truncated).is_err());
    }

    #[test]
    fn cost_model_total_is_sum_of_terms(
        alpha in 0.0f64..10.0,
        nlist in 4usize..64,
    ) {
        use harmony::cluster::NetworkModel;
        use harmony::core::CostModel;
        let model = CostModel::new(NetworkModel::default(), alpha);
        let profile = WorkloadProfile::uniform(vec![100; nlist], 32, 50, 4);
        let cost = model.plan_cost(PartitionPlan::pure_vector(4), &profile);
        prop_assert!(
            (cost.total_ns - (cost.comp_ns + cost.comm_ns + alpha * cost.imbalance_ns)).abs()
                < 1e-6 * cost.total_ns.max(1.0)
        );
        prop_assert!(cost.comp_ns >= 0.0 && cost.comm_ns >= 0.0 && cost.imbalance_ns >= 0.0);
    }

    #[test]
    fn store_partitioning_preserves_content(
        n in 1usize..32,
        dim in 2usize..32,
        blocks in 1usize..4,
        seed in 0u64..1_000,
    ) {
        prop_assume!(blocks <= dim);
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        let store = VectorStore::from_flat(dim, data).unwrap();
        // Slicing into blocks and restitching column-wise is the identity.
        let slices: Vec<VectorStore> = DimRange::split(dim, blocks)
            .into_iter()
            .map(|r| store.slice_dims(r))
            .collect();
        for row in 0..n {
            let mut rebuilt = Vec::with_capacity(dim);
            for s in &slices {
                rebuilt.extend_from_slice(s.row(row));
            }
            prop_assert_eq!(rebuilt.as_slice(), store.row(row));
        }
    }
}

#[test]
fn workload_profile_weights_match_cluster_work() {
    let profile = WorkloadProfile::uniform(vec![10, 20, 30], 8, 100, 2);
    let work = profile.cluster_work();
    assert!(work[1] / work[0] > 1.9 && work[1] / work[0] < 2.1);
    assert!(work[2] / work[0] > 2.9 && work[2] / work[0] < 3.1);
}
