//! Failure injection, timeouts, dataset IO, and cross-crate plumbing.

use harmony::cluster::{
    Cluster, ClusterConfig, ClusterError, NodeCtx, NodeHandler, NodeId, CLIENT,
};
use harmony::data::io;
use harmony::prelude::*;
use std::time::Duration;

struct Echo;
impl NodeHandler for Echo {
    fn handle(&mut self, ctx: &NodeCtx, _from: NodeId, payload: bytes::Bytes) {
        ctx.send(CLIENT, payload).unwrap();
    }
}

#[test]
fn lossy_network_times_out_cleanly() {
    let cfg = ClusterConfig {
        workers: 2,
        drop_every_nth: 3, // every third message vanishes
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::spawn(cfg, |_| Echo);
    let mut delivered = 0;
    let mut timeouts = 0;
    for i in 0..8 {
        cluster
            .send(i % 2, bytes::Bytes::from_static(b"x"))
            .unwrap();
        match cluster.recv_timeout(Duration::from_millis(100)) {
            Ok(_) => delivered += 1,
            Err(ClusterError::Timeout) => timeouts += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    // With request or reply dropped, some round trips must fail — and the
    // failures must be clean timeouts, never hangs or panics.
    assert!(timeouts > 0, "expected some losses");
    assert!(delivered > 0, "expected some successes");
    cluster.shutdown().unwrap();
}

#[test]
fn search_survives_engine_reuse_after_timeout_configuration() {
    // A very short timeout with a healthy cluster must still succeed for
    // small work, proving the timeout plumbing does not trip spuriously.
    let d = SyntheticSpec::clustered(500, 8, 4).with_seed(1).generate();
    let config = HarmonyConfig::builder()
        .n_machines(2)
        .nlist(8)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let opts = SearchOptions::new(3).with_nprobe(2).with_timeout_ms(5_000);
    for qi in 0..5 {
        assert_eq!(
            engine
                .search(d.queries.row(qi), &opts)
                .unwrap()
                .neighbors
                .len(),
            3
        );
    }
    engine.shutdown().unwrap();
}

#[test]
fn fvecs_roundtrip_feeds_an_engine() {
    let d = SyntheticSpec::clustered(600, 12, 6).with_seed(2).generate();
    let mut path = std::env::temp_dir();
    path.push(format!("harmony-it-{}.fvecs", std::process::id()));
    io::write_fvecs(&path, &d.base).unwrap();
    let loaded = io::read_fvecs(&path).unwrap();
    assert_eq!(loaded.len(), d.base.len());
    assert_eq!(loaded.as_flat(), d.base.as_flat());

    let config = HarmonyConfig::builder()
        .n_machines(2)
        .nlist(8)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &loaded).unwrap();
    let res = engine
        .search(d.base.row(0), &SearchOptions::new(1).with_nprobe(8))
        .unwrap();
    assert_eq!(res.neighbors[0].id, 0);
    engine.shutdown().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_tiny_datasets_behave() {
    // Single vector, k larger than the dataset.
    let store = VectorStore::from_flat(4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
    let config = HarmonyConfig::builder()
        .n_machines(2)
        .nlist(4)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &store).unwrap();
    let res = engine
        .search(
            &[1.0, 2.0, 3.0, 4.0],
            &SearchOptions::new(10).with_nprobe(4),
        )
        .unwrap();
    assert_eq!(res.neighbors.len(), 1);
    assert_eq!(res.neighbors[0].id, 0);
    engine.shutdown().unwrap();
}

#[test]
fn dimension_blocks_cannot_exceed_dimensions() {
    let store = VectorStore::from_flat(2, vec![0.0; 2 * 50]).unwrap();
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(4)
        .plan(harmony::core::PartitionPlan::new(1, 4).unwrap())
        .build()
        .unwrap();
    assert!(HarmonyEngine::build(config, &store).is_err());
}

#[test]
fn dimension_mode_clamps_blocks_to_dim() {
    // HarmonyDimension on 2-d data with 4 machines must clamp, not fail.
    let store = VectorStore::from_flat(2, vec![0.5; 2 * 60]).unwrap();
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(4)
        .mode(harmony::core::EngineMode::HarmonyDimension)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &store).unwrap();
    assert!(engine.plan().dim_blocks <= 2);
    engine.shutdown().unwrap();
}

#[test]
fn peak_memory_counters_wire_through() {
    use harmony::cluster::mem;
    // Not installed as global allocator in the test binary: counters must
    // read zero-ish and never panic.
    let _ = mem::current_bytes();
    let _ = mem::peak_bytes();
    mem::reset_peak();
    assert_eq!(mem::format_bytes(0), "0 B");
}
