//! Namespaces and temperature tiering, end to end: a tenant namespace's
//! results must be bit-identical across its hot → demoted (disk-resident)
//! → re-promoted lifecycle, on both transports and both block
//! representations, with four concurrent sessions in flight — spilling a
//! block to disk and faulting it back through the worker cache must be
//! invisible to every query. Separately, namespaces sharing one engine
//! must be perfectly isolated even when their tenants reuse the same
//! vector ids.

use harmony::prelude::*;

const WORKERS: usize = 4;
const SESSIONS: usize = 4;
const QUERIES_PER_SESSION: usize = 16;

type SessionResults = Vec<Vec<Neighbor>>;

fn dataset() -> harmony::data::Dataset {
    SyntheticSpec::clustered(1_500, 32, 8)
        .with_seed(61)
        .generate()
}

fn build_engine(
    d: &harmony::data::Dataset,
    transport: &TransportKind,
    repr: BlockRepr,
) -> HarmonyEngine {
    // balanced_load(false) keeps dispatch row-deterministic so result bits
    // depend only on the layout — the property under test is that storage
    // temperature is *not* part of the layout.
    let config = HarmonyConfig::builder()
        .n_machines(WORKERS)
        .nlist(32)
        .seed(11)
        .balanced_load(false)
        .transport(transport.clone())
        .repr(repr)
        .cache_budget_bytes(1 << 20)
        .build()
        .unwrap();
    HarmonyEngine::build(config, &d.base).unwrap()
}

fn session_batches(d: &harmony::data::Dataset) -> Vec<VectorStore> {
    (0..SESSIONS)
        .map(|t| {
            let rows: Vec<usize> = (0..QUERIES_PER_SESSION)
                .map(|i| (t * 613 + i * 29) % d.base.len())
                .collect();
            d.base.gather(&rows)
        })
        .collect()
}

/// Four concurrent sessions against one namespace; returns per-session
/// ranked results.
fn run_concurrent(
    engine: &HarmonyEngine,
    ns: u16,
    batches: &[VectorStore],
    opts: &SearchOptions,
    label: &str,
) -> Vec<SessionResults> {
    std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .iter()
            .map(|b| s.spawn(move || engine.search_batch_ns(ns, b, opts).unwrap().results))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("{label} session panicked"))
            })
            .collect()
    })
}

fn assert_bit_identical(a: &[SessionResults], b: &[SessionResults], phase: &str) {
    assert_eq!(a.len(), b.len(), "{phase}: session counts differ");
    for (t, (sa, sb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            sa.len(),
            sb.len(),
            "{phase}: session {t} result counts differ"
        );
        for (q, (ra, rb)) in sa.iter().zip(sb).enumerate() {
            assert_eq!(
                ra.len(),
                rb.len(),
                "{phase}: session {t} query {q} top-k lengths differ"
            );
            for (na, nb) in ra.iter().zip(rb) {
                assert_eq!(na.id, nb.id, "{phase}: session {t} query {q} ids differ");
                assert_eq!(
                    na.score.to_bits(),
                    nb.score.to_bits(),
                    "{phase}: session {t} query {q} score bits differ for id {}",
                    na.id
                );
            }
        }
    }
}

/// Hot → Cold → Hot on one engine configuration: every phase must return
/// the same bits under four concurrent sessions.
fn run_tier_roundtrip(transport: TransportKind, repr: BlockRepr) {
    let d = dataset();
    let engine = build_engine(&d, &transport, repr);
    let batches = session_batches(&d);
    let opts = SearchOptions::new(10).with_nprobe(8);

    assert_eq!(engine.namespace_tier(0).unwrap(), Temperature::Hot);
    let hot = run_concurrent(&engine, 0, &batches, &opts, "hot");

    // Demote: blocks spill to disk; queries fault them back through the
    // (deliberately tiny) cache, evicting and re-reading under pressure.
    engine.set_namespace_tier(0, Temperature::Cold).unwrap();
    let stats = engine.collect_stats().unwrap();
    assert!(
        stats.spilled_block_bytes > 0,
        "cold tier must spill blocks to disk ({transport:?}, {repr:?})"
    );
    let cold = run_concurrent(&engine, 0, &batches, &opts, "cold");
    assert_bit_identical(&hot, &cold, "hot vs demoted");

    // Re-promote: everything resident again.
    engine.set_namespace_tier(0, Temperature::Hot).unwrap();
    let stats = engine.collect_stats().unwrap();
    assert_eq!(
        stats.spilled_block_bytes, 0,
        "re-promotion must restore full residency ({transport:?}, {repr:?})"
    );
    let back = run_concurrent(&engine, 0, &batches, &opts, "re-promoted");
    assert_bit_identical(&hot, &back, "hot vs re-promoted");

    engine.shutdown().unwrap();
}

#[test]
fn tier_roundtrip_bit_identical_inproc_f32() {
    run_tier_roundtrip(TransportKind::InProc, BlockRepr::F32);
}

#[test]
fn tier_roundtrip_bit_identical_inproc_sq8() {
    run_tier_roundtrip(TransportKind::InProc, BlockRepr::Sq8);
}

#[test]
fn tier_roundtrip_bit_identical_tcp_f32() {
    run_tier_roundtrip(TransportKind::tcp(), BlockRepr::F32);
}

#[test]
fn tier_roundtrip_bit_identical_tcp_sq8() {
    run_tier_roundtrip(TransportKind::tcp(), BlockRepr::Sq8);
}

/// Cross-namespace isolation, property-style: tenants deliberately reuse
/// the same vector ids with *different* vectors; searches, upserts and
/// deletes in one namespace must never leak into another. The shared
/// default namespace is the control group.
#[test]
fn namespaces_isolate_overlapping_id_spaces() {
    let d = dataset();
    let engine = build_engine(&d, &TransportKind::InProc, BlockRepr::F32);
    let opts = SearchOptions::new(5).with_nprobe(8);

    // Three tenants over disjoint data that reuses ids 0..300.
    let tenants: Vec<harmony::data::Dataset> = (0..3)
        .map(|t| {
            SyntheticSpec::clustered(300, 32, 4)
                .with_seed(100 + t as u64)
                .generate()
        })
        .collect();
    let ns: Vec<u16> = tenants
        .iter()
        .map(|t| {
            engine
                .create_namespace(&NamespaceConfig::default().with_nlist(8), &t.base)
                .unwrap()
        })
        .collect();

    let ns0_baseline: Vec<Vec<Neighbor>> = (0..10)
        .map(|i| engine.search(d.base.row(i), &opts).unwrap().neighbors)
        .collect();

    // Self-queries: the same id names a different vector in every tenant,
    // and each tenant resolves it to *its own* vector with a self-match
    // score.
    for (t, tenant) in tenants.iter().enumerate() {
        for row in (0..300).step_by(37) {
            let got = engine
                .search_ns(ns[t], tenant.base.row(row), &opts)
                .unwrap()
                .neighbors;
            assert_eq!(
                got.first().map(|n| n.id),
                Some(tenant.base.id(row)),
                "tenant {t} row {row} must find its own vector"
            );
        }
    }

    // Mutations in tenant 0 — including a delete of an id every tenant
    // shares — must be invisible to tenant 1, tenant 2, and ns0.
    assert!(engine.delete_ns(ns[0], 5).unwrap());
    engine.upsert_ns(ns[0], 7, tenants[2].base.row(7)).unwrap();
    for t in [1usize, 2] {
        let got = engine
            .search_ns(ns[t], tenants[t].base.row(5), &opts)
            .unwrap()
            .neighbors;
        assert_eq!(
            got.first().map(|n| n.id),
            Some(tenants[t].base.id(5)),
            "tenant {t} still owns id 5 after tenant 0 deleted its copy"
        );
    }
    for (i, want) in ns0_baseline.iter().enumerate() {
        let got = engine.search(d.base.row(i), &opts).unwrap().neighbors;
        let want_ids: Vec<u64> = want.iter().map(|n| n.id).collect();
        let got_ids: Vec<u64> = got.iter().map(|n| n.id).collect();
        assert_eq!(
            got_ids, want_ids,
            "ns0 query {i} changed after tenant churn"
        );
    }

    // Tiering one tenant must not disturb the others' results.
    engine.set_namespace_tier(ns[1], Temperature::Cold).unwrap();
    for (t, tenant) in tenants.iter().enumerate() {
        let got = engine
            .search_ns(ns[t], tenant.base.row(11), &opts)
            .unwrap()
            .neighbors;
        assert_eq!(
            got.first().map(|n| n.id),
            Some(tenant.base.id(11)),
            "tenant {t} broken by tenant 1's demotion"
        );
    }

    engine.shutdown().unwrap();
}
