//! Property tests for the framed transport codec: every typed message
//! variant must survive the full wire path — `Wire` serialization into a
//! `Frame::User` payload, length-prefixed frame encoding, frame decoding,
//! and `Wire` deserialization — bit for bit. Truncated frames must decode
//! to "incomplete" without consuming bytes, and frames whose header
//! declares a body larger than [`MAX_FRAME_BYTES`] must be rejected.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use harmony::cluster::codec::Wire;
use harmony::cluster::{decode_frame, encode_frame, Frame, MAX_FRAME_BYTES};
use harmony::core::messages::{
    BeginEpoch, Carry, ClusterBlock, DeleteIds, DeltaUpsert, InstallLists, ListPiece, LoadBlock,
    MigrateOut, QueryChunk, QueryResult, SetTier, StatsReport, ToClient, ToWorker, TransferSpec,
};
use harmony::index::Sq8Segment;
use proptest::prelude::*;

/// Pushes `payload` through the complete frame path and asserts identity.
fn roundtrip_payload(payload: Bytes, from: u64, delay: u64) -> Result<(), TestCaseError> {
    let frame = Frame::User {
        from: from as usize,
        payload: payload.clone(),
        injected_delay_ns: delay,
    };
    let mut wire = BytesMut::new();
    encode_frame(&frame, &mut wire);
    let mut buf = wire.freeze();
    let got = decode_frame(&mut buf)
        .map_err(|e| TestCaseError::Fail(format!("decode failed: {e}")))?
        .ok_or_else(|| TestCaseError::Fail("complete frame decoded as incomplete".into()))?;
    prop_assert_eq!(&got, &frame);
    prop_assert_eq!(buf.remaining(), 0, "decode left trailing bytes");
    match got {
        Frame::User { payload: p, .. } => prop_assert_eq!(p, payload),
        other => return Err(TestCaseError::Fail(format!("wrong frame kind {other:?}"))),
    }
    Ok(())
}

/// Round-trips a typed message through `Wire` + the frame path.
fn roundtrip_msg<T: Wire + PartialEq + std::fmt::Debug>(
    msg: T,
    from: u64,
    delay: u64,
) -> Result<(), TestCaseError> {
    let payload = msg.to_bytes();
    roundtrip_payload(payload.clone(), from, delay)?;
    let back =
        T::from_bytes(payload).map_err(|e| TestCaseError::Fail(format!("Wire decode: {e}")))?;
    prop_assert_eq!(back, msg);
    Ok(())
}

/// One quantized segment covering `[dim_start, dim_start + width)` for `n`
/// rows (what an SQ8 block or migration piece carries instead of `flat`).
fn sample_segs(n: usize, width: usize, dim_start: u64) -> Vec<Sq8Segment> {
    if n == 0 {
        return Vec::new();
    }
    let flat: Vec<f32> = (0..n * width).map(|i| i as f32 * 0.375 - 3.0).collect();
    vec![Sq8Segment::quantize(&flat, width, dim_start)]
}

fn sample_block(cluster: u32, n: usize, width: usize, ip: bool, sq8: bool) -> ClusterBlock {
    ClusterBlock {
        cluster,
        ids: (0..n as u64).map(|i| i * 3 + 1).collect(),
        flat: if sq8 {
            Vec::new()
        } else {
            (0..n * width).map(|i| i as f32 * 0.25 - 1.0).collect()
        },
        segs: if sq8 {
            sample_segs(n, width, 0)
        } else {
            Vec::new()
        },
        block_norms_sq: if ip { vec![1.5; n] } else { Vec::new() },
        total_norms_sq: if ip { vec![4.0; n] } else { Vec::new() },
    }
}

fn sample_piece(cluster: u32, n: usize, width: usize, ip: bool, sq8: bool) -> ListPiece {
    ListPiece {
        cluster,
        dim_start: 8,
        dim_end: 8 + width as u64,
        ids: (0..n as u64).map(|i| i * 7).collect(),
        flat: if sq8 {
            Vec::new()
        } else {
            (0..n * width).map(|i| -(i as f32) * 0.5).collect()
        },
        segs: if sq8 {
            sample_segs(n, width, 8)
        } else {
            Vec::new()
        },
        piece_norms_sq: if ip { vec![0.75; n] } else { Vec::new() },
        total_norms_sq: if ip { vec![2.25; n] } else { Vec::new() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every `ToWorker` variant survives the full frame path.
    #[test]
    fn to_worker_variants_roundtrip_through_frames(
        tag in 0usize..12,
        ns in 0u16..8,
        epoch in 0u64..1_000,
        shard in 0u32..64,
        n in 0usize..12,
        width in 1usize..8,
        ip in proptest::bool::ANY,
        sq8 in proptest::bool::ANY,
        from in 0u64..8,
        delay in 0u64..1_000_000,
        seed in proptest::num::u64::ANY,
    ) {
        let msg = match tag {
            0 => ToWorker::Load(LoadBlock {
                ns,
                epoch,
                shard,
                dim_block: shard % 4,
                dim_start: 0,
                dim_end: width as u64,
                total_dim_blocks: 4,
                metric: (seed % 3) as u8,
                pruning: ip,
                repr: sq8 as u8,
                lists: vec![sample_block(shard, n, width, ip, sq8)],
            }),
            1 => ToWorker::Chunk(QueryChunk {
                ns,
                query_id: seed,
                epoch,
                shard,
                k: 10,
                threshold: if ip { f32::INFINITY } else { 1.25 },
                clusters: (0..n as u32).collect(),
                dims: (0..width).map(|i| i as f32 * 0.1).collect(),
                q_total_norm_sq: 2.0,
                order: (0..4u64).collect(),
                position: shard % 4,
                delta_seq: seed % 1_000,
            }),
            2 => ToWorker::Carry(Carry {
                ns,
                query_id: seed,
                epoch,
                shard,
                threshold: 0.5,
                next_position: 1,
                indices: (0..n as u32).map(|i| i * 2).collect(),
                partials: (0..n).map(|i| i as f32).collect(),
                visited_norms_sq: if ip { vec![1.0; n] } else { Vec::new() },
                q_visited_norm_sq: if ip { 0.25 } else { 0.0 },
                quant_eps: if sq8 { 0.0625 } else { 0.0 },
            }),
            3 => ToWorker::GetStats,
            4 => ToWorker::ResetStats,
            5 => ToWorker::BeginEpoch(BeginEpoch {
                ns,
                epoch,
                shard,
                dim_block: 1,
                dim_start: 0,
                dim_end: width as u64,
                total_dim_blocks: 2,
                expected_pieces: n as u64,
            }),
            6 => ToWorker::MigrateOut(MigrateOut {
                ns,
                epoch,
                transfers: (0..n as u32).map(|c| TransferSpec {
                    cluster: c,
                    src_epoch: epoch,
                    src_shard: shard,
                    dim_start: 0,
                    dim_end: width as u64,
                    dest: seed % 4,
                    dest_shard: c % 2,
                    dest_dim_block: c % 3,
                }).collect(),
            }),
            7 => ToWorker::InstallLists(InstallLists {
                ns,
                epoch,
                shard,
                dim_block: 0,
                pieces: vec![sample_piece(shard, n, width, ip, sq8)],
            }),
            8 => ToWorker::EvictEpoch { ns, epoch },
            9 => ToWorker::UpsertDelta(DeltaUpsert {
                ns,
                epoch,
                shard,
                dim_start: 0,
                dim_end: width as u64,
                ids: (0..n as u64).map(|i| i * 5 + 2).collect(),
                seqs: (0..n as u64).map(|i| seed % 1_000 + i).collect(),
                flat: (0..n * width).map(|i| i as f32 * 0.125 - 2.0).collect(),
                block_norms_sq: if ip { vec![0.5; n] } else { Vec::new() },
                total_norms_sq: if ip { vec![1.75; n] } else { Vec::new() },
            }),
            10 => ToWorker::DeleteIds(DeleteIds {
                ns,
                epoch: if ip { u64::MAX } else { epoch },
                ids: (0..n as u64).map(|i| i * 11).collect(),
                seq: seed % 10_000,
            }),
            _ => ToWorker::SetTier(SetTier {
                ns,
                temperature: (seed % 3) as u8,
            }),
        };
        roundtrip_msg(msg, from, delay)?;
    }

    /// Every `ToClient` variant survives the full frame path.
    #[test]
    fn to_client_variants_roundtrip_through_frames(
        tag in 0usize..5,
        ns in 0u16..8,
        epoch in 0u64..1_000,
        shard in 0u32..64,
        n in 0usize..16,
        from in 0u64..8,
        delay in 0u64..1_000_000,
        seed in proptest::num::u64::ANY,
    ) {
        let msg = match tag {
            0 => ToClient::LoadAck { ns, shard, dim_block: shard % 4 },
            1 => ToClient::Result(QueryResult {
                query_id: seed,
                shard,
                ids: (0..n as u64).collect(),
                scores: (0..n).map(|i| i as f32 * 0.5 - 2.0).collect(),
                candidates_seen: seed % 10_000,
            }),
            2 => ToClient::Stats(StatsReport {
                slice_in: (0..n as u64).collect(),
                slice_pruned: (0..n as u64).map(|x| x / 2).collect(),
                scanned_point_dims: seed,
                memory_bytes: seed / 3,
                f32_block_bytes: seed / 5,
                sq8_block_bytes: seed / 7,
                compute_ns: seed / 11,
                delta_bytes: seed / 13,
                delta_rows: seed % 100,
                tombstone_entries: seed % 50,
                cache_block_bytes: seed / 17,
                spilled_block_bytes: seed / 19,
            }),
            3 => ToClient::EpochReady { ns, epoch },
            _ => ToClient::TierAck { ns },
        };
        roundtrip_msg(msg, from, delay)?;
    }

    /// Control frames (`Ping`/`Pong`/`Shutdown`) and arbitrary opaque
    /// payloads also round-trip.
    #[test]
    fn control_frames_and_raw_payloads_roundtrip(
        token in proptest::num::u64::ANY,
        from in 0u64..8,
        body in proptest::collection::vec(proptest::num::u8::ANY, 0..256),
    ) {
        for frame in [
            Frame::Ping { token },
            Frame::Pong { from: from as usize, token },
            Frame::Shutdown,
        ] {
            let mut wire = BytesMut::new();
            encode_frame(&frame, &mut wire);
            let mut buf = wire.freeze();
            let got = decode_frame(&mut buf)
                .map_err(|e| TestCaseError::Fail(format!("decode failed: {e}")))?
                .ok_or_else(|| TestCaseError::Fail("incomplete".into()))?;
            prop_assert_eq!(got, frame);
        }
        roundtrip_payload(Bytes::from(body), from, token % 1_000)?;
    }

    /// Any strict prefix of an encoded frame decodes as "incomplete" and
    /// consumes nothing — the stream reader can always wait for more bytes.
    #[test]
    fn truncated_frames_report_incomplete(
        body in proptest::collection::vec(proptest::num::u8::ANY, 0..128),
        from in 0u64..8,
        cut_seed in proptest::num::u64::ANY,
    ) {
        let frame = Frame::User {
            from: from as usize,
            payload: Bytes::from(body),
            injected_delay_ns: 0,
        };
        let mut wire = BytesMut::new();
        encode_frame(&frame, &mut wire);
        let full = wire.freeze();
        prop_assume!(full.len() > 1);
        let cut = (cut_seed % (full.len() as u64 - 1)) as usize + 1; // 1..len
        let mut prefix = full.slice(..cut);
        let before = prefix.remaining();
        match decode_frame(&mut prefix) {
            Ok(None) => prop_assert_eq!(prefix.remaining(), before, "incomplete decode consumed bytes"),
            Ok(Some(f)) => return Err(TestCaseError::Fail(format!(
                "truncated frame ({cut}/{} bytes) decoded as {f:?}", full.len()
            ))),
            Err(e) => return Err(TestCaseError::Fail(format!("truncated frame errored: {e}"))),
        }
    }

    /// A header declaring a body beyond the cap is rejected outright, no
    /// matter how many bytes follow — a corrupt peer cannot make the
    /// reader allocate unboundedly.
    #[test]
    fn oversized_frames_are_rejected(
        excess in 1u64..1_000_000,
        tail in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
    ) {
        let declared = (MAX_FRAME_BYTES as u64 + excess).min(u32::MAX as u64) as u32;
        let mut wire = BytesMut::new();
        wire.put_u32_le(declared);
        wire.extend_from_slice(&tail);
        let mut buf = wire.freeze();
        prop_assert!(
            decode_frame(&mut buf).is_err(),
            "declared body of {declared} bytes must be rejected"
        );
    }
}
