//! Adaptive replanning: the plan supervisor must detect workload drift
//! from live probe counters and switch layouts via live migration — while
//! concurrent search sessions lose no results, duplicate no results, and
//! stay bit-identical to serialized runs of the layouts they executed on.

use std::sync::atomic::{AtomicBool, Ordering};

use harmony::core::{EngineMode, ReplanConfig, ReplanOutcome};
use harmony::prelude::*;
use rand::prelude::*;

fn clustered(n: usize, dim: usize, seed: u64) -> harmony::data::Dataset {
    SyntheticSpec::clustered(n, dim, 8)
        .with_seed(seed)
        .generate()
}

/// Queries jittered around one centroid: with a small `nprobe` their probes
/// concentrate on a hot set smaller than the shard count, the adversarial
/// drift for vector partitioning (no rebalance can spread one hot list).
fn hot_queries(engine: &HarmonyEngine, cluster: usize, n: usize, seed: u64) -> VectorStore {
    let centroids = engine.centroids();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = VectorStore::with_capacity(centroids.dim(), n);
    for i in 0..n {
        let mut q = centroids.row(cluster).to_vec();
        for x in q.iter_mut() {
            *x += rng.random_range(-0.01..0.01f32);
        }
        queries.push(i as u64, &q).expect("dims match");
    }
    queries
}

/// Exact per-query comparison helper: `got` must match one of the
/// per-epoch references bit-for-bit.
fn matches_bitwise(got: &[Neighbor], reference: &[Neighbor]) -> bool {
    got.len() == reference.len()
        && got
            .iter()
            .zip(reference)
            .all(|(a, b)| a.id == b.id && a.score.to_bits() == b.score.to_bits())
}

#[test]
fn supervisor_holds_on_a_fitting_plan_under_uniform_traffic() {
    let d = clustered(8_000, 32, 21);
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .mode(EngineMode::Harmony)
        .seed(7)
        .replan(ReplanConfig {
            min_window_queries: 32,
            amortize_windows: 200.0,
            ..ReplanConfig::default()
        })
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    assert_eq!(engine.current_epoch(), 0);
    // The build already chose the cost-optimal plan for a uniform profile,
    // so observing uniform traffic must not trigger a migration.
    let opts = SearchOptions::new(10).with_nprobe(4);
    engine.search_batch(&d.queries, &opts).unwrap();
    match engine.supervisor_tick().unwrap() {
        ReplanOutcome::Hold { stay_ns, best_ns } => assert!(best_ns >= 0.0 && stay_ns >= 0.0),
        ReplanOutcome::InsufficientData => {}
        other => panic!("uniform traffic must not trigger a switch, got {other:?}"),
    }
    assert_eq!(engine.current_epoch(), 0);
    engine.shutdown().unwrap();
}

#[test]
fn supervisor_switches_a_stale_plan_under_induced_skew() {
    // The ISSUE scenario: a deployment stuck on vector partitioning (the
    // right call for some earlier workload) meets a flash-sale drift whose
    // hot set is smaller than the shard count. No re-packing can spread
    // one hot list, so the supervisor must migrate to dimension blocks.
    // Sized so per-probe computation dominates per-message network cost
    // regardless of the host's calibrated kernel rate (1500-row lists,
    // 64-d vectors) — the paper's Figs. 6-7 regime.
    let d = clustered(24_000, 64, 21);
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .mode(EngineMode::HarmonyVector)
        .seed(7)
        .replan(ReplanConfig {
            min_window_queries: 32,
            amortize_windows: 200.0,
            ..ReplanConfig::default()
        })
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let stale_plan = engine.plan();
    assert_eq!(stale_plan, PartitionPlan::pure_vector(4));

    // Drift: every query hammers one cluster's neighborhood with nprobe 2.
    let hot = hot_queries(&engine, 3, 128, 99);
    let hot_opts = SearchOptions::new(10).with_nprobe(2);
    let stale = engine.search_batch(&hot, &hot_opts).unwrap();
    let outcome = engine.supervisor_tick().unwrap();
    let ReplanOutcome::Switched(report) = outcome else {
        panic!("induced skew must trigger a switch, got {outcome:?}");
    };
    assert_eq!(report.from_plan, stale_plan);
    assert!(
        report.to_plan.dim_blocks > 1,
        "a hot set smaller than the shard count needs dimension blocks, got {}",
        report.to_plan.label()
    );
    assert_eq!(engine.current_epoch(), report.to_epoch);
    assert_eq!(engine.plan(), report.to_plan);
    assert!(report.modeled_bytes > 0 && report.network_pieces > 0);
    assert!(report.projected_ns < report.stay_ns);

    // The replanned layout beats the stale one on the same drifted traffic
    // (modeled makespan QPS, the paper's Fig. 7 recovery).
    let recovered = engine.search_batch(&hot, &hot_opts).unwrap();
    assert!(
        recovered.qps_modeled() > stale.qps_modeled(),
        "replanning must recover throughput: stale {:.0} vs replanned {:.0}",
        stale.qps_modeled(),
        recovered.qps_modeled()
    );

    // A follow-up window of the same traffic holds: hysteresis prevents
    // flapping once the layout fits.
    engine.search_batch(&hot, &hot_opts).unwrap();
    match engine.supervisor_tick().unwrap() {
        ReplanOutcome::Hold { .. } | ReplanOutcome::InsufficientData => {}
        other => panic!("the replanned layout must be stable, got {other:?}"),
    }

    // Post-switch correctness: the migrated layout answers like a
    // single-node IVF with the same clustering.
    let opts = SearchOptions::new(10).with_nprobe(4);
    let mut ivf = IvfIndex::train(&d.base, &IvfParams::new(16).with_seed(7)).unwrap();
    ivf.add(&d.base).unwrap();
    for qi in 0..8 {
        let q = d.queries.row(qi);
        let got = engine.search(q, &opts).unwrap().neighbors;
        let want = ivf.search(q, 10, 4).unwrap();
        assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(&want) {
            if x.id != y.id {
                assert!(
                    (x.score - y.score).abs() <= 1e-3 * x.score.abs().max(1.0),
                    "post-migration results diverge: {x:?} vs {y:?}"
                );
            }
        }
    }
    engine.shutdown().unwrap();
}

#[test]
fn auto_replan_ticks_from_search_traffic() {
    let d = clustered(24_000, 64, 33);
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .mode(EngineMode::HarmonyVector)
        .seed(7)
        .replan(ReplanConfig {
            check_every: 64,
            min_window_queries: 32,
            amortize_windows: 200.0,
            ..ReplanConfig::default()
        })
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let hot = hot_queries(&engine, 5, 96, 123);
    let opts = SearchOptions::new(10).with_nprobe(2);
    // No manual ticks: batches alone must cross the check threshold and
    // drive the supervisor.
    for _ in 0..4 {
        engine.search_batch(&hot, &opts).unwrap();
    }
    assert!(
        engine.current_epoch() > 0,
        "auto supervision never replanned; plan still {}",
        engine.plan().label()
    );
    engine.shutdown().unwrap();
}

#[test]
fn live_migration_loses_and_duplicates_nothing_across_sessions() {
    let d = clustered(3_000, 24, 42);
    // balanced_load(false): deterministic dimension-order rotation, so
    // per-epoch results are bit-reproducible (the PR-2 contract). The plan
    // override pins epoch 0 to the row layout the test migrates back to.
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .seed(7)
        .balanced_load(false)
        .plan(PartitionPlan::pure_vector(4))
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let opts = SearchOptions::new(10).with_nprobe(4);
    let baseline_memory = engine.collect_stats().unwrap().total_memory_bytes();

    let batches: Vec<VectorStore> = (0..4)
        .map(|t| {
            let rows: Vec<usize> = (0..24).map(|i| (t * 131 + i * 17) % d.base.len()).collect();
            d.base.gather(&rows)
        })
        .collect();

    let grid = PartitionPlan::new(2, 2).unwrap();
    let row_plan = PartitionPlan::pure_vector(4);

    // Serialized per-epoch references: epoch 0 (4v x 1d) and the 2v x 2d
    // layout. Migrating back to 4v x 1d reproduces epoch 0 bit-for-bit
    // (same deterministic round-robin packing, same dimension ranges).
    let refs_row: Vec<_> = batches
        .iter()
        .map(|b| engine.search_batch(b, &opts).unwrap().results)
        .collect();
    engine.migrate_to(grid).unwrap();
    let refs_grid: Vec<_> = batches
        .iter()
        .map(|b| engine.search_batch(b, &opts).unwrap().results)
        .collect();
    engine.migrate_to(row_plan).unwrap();
    for (b, reference) in batches.iter().zip(&refs_row) {
        let again = engine.search_batch(b, &opts).unwrap().results;
        for (got, want) in again.iter().zip(reference) {
            assert!(
                matches_bitwise(got, want),
                "round-trip migration must restore bit-identical results"
            );
        }
    }

    // ≥ 4 concurrent sessions hammer the engine while the main thread
    // migrates back and forth between the layouts.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for b in &batches {
            let engine = &engine;
            let opts = &opts;
            let stop = &stop;
            handles.push(s.spawn(move || {
                let mut rounds = 0usize;
                let mut last = Vec::new();
                while !stop.load(Ordering::Relaxed) || rounds < 3 {
                    let out = engine.search_batch(b, opts).unwrap();
                    // Zero loss: every query answers, fully.
                    assert_eq!(out.results.len(), b.len());
                    for r in &out.results {
                        assert_eq!(r.len(), opts.k, "query lost results mid-migration");
                        let mut ids: Vec<u64> = r.iter().map(|n| n.id).collect();
                        ids.sort_unstable();
                        ids.dedup();
                        assert_eq!(r.len(), ids.len(), "duplicated results mid-migration");
                    }
                    last = out.results;
                    rounds += 1;
                }
                (rounds, last)
            }));
        }
        for plan in [grid, row_plan, grid, row_plan] {
            let report = engine.migrate_to(plan).unwrap();
            assert_eq!(report.to_plan, plan);
        }
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            let (rounds, last) = h.join().unwrap();
            assert!(rounds >= 3);
            // Bit-identity: each query's answer matches one of the two
            // layouts' serialized references exactly.
            for (qi, got) in last.iter().enumerate() {
                let row_ref = &refs_row[t][qi];
                let grid_ref = &refs_grid[t][qi];
                assert!(
                    matches_bitwise(got, row_ref) || matches_bitwise(got, grid_ref),
                    "thread {t} query {qi}: result matches neither layout's \
                     serialized reference"
                );
            }
        }
    });

    // After the sessions drain, retired epochs are evicted at batch
    // completion: worker memory returns to roughly one layout's footprint,
    // not the sum of every epoch the test cycled through. (One more batch
    // guarantees a GC pass after the last in-flight Arc dropped.)
    engine.search_batch(&batches[0], &opts).unwrap();
    let collected = engine.collect_stats().unwrap().total_memory_bytes();
    assert!(
        collected < baseline_memory + baseline_memory / 2,
        "retired epochs must be evicted (baseline {baseline_memory}, now {collected} bytes)"
    );
    engine.shutdown().unwrap();
}

#[test]
fn same_plan_rebalance_migrates_cleanly() {
    let d = clustered(2_000, 16, 11);
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(16)
        .seed(7)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    let opts = SearchOptions::new(5).with_nprobe(4);
    let before = engine.search_batch(&d.queries, &opts).unwrap().results;

    // Forcing the same plan re-packs clusters through the full migration
    // handshake (epoch bump, piece shipping, ack, swap).
    let plan = engine.plan();
    let report = engine.migrate_to(plan).unwrap();
    assert_eq!(report.from_plan, report.to_plan);
    assert_eq!(engine.current_epoch(), report.to_epoch);

    let after = engine.search_batch(&d.queries, &opts).unwrap().results;
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            if x.id != y.id {
                assert!(
                    (x.score - y.score).abs() <= 1e-4 * x.score.abs().max(1.0),
                    "rebalance changed results: {x:?} vs {y:?}"
                );
            }
        }
    }
    engine.shutdown().unwrap();
}

#[test]
fn throttled_migration_ships_in_waves_and_matches_unthrottled_results() {
    let d = clustered(2_000, 16, 13);
    let build = |max_pieces_per_tick: usize| {
        let config = HarmonyConfig::builder()
            .n_machines(4)
            .nlist(16)
            .seed(7)
            .balanced_load(false)
            .replan(ReplanConfig {
                max_pieces_per_tick,
                ..ReplanConfig::default()
            })
            .build()
            .unwrap();
        HarmonyEngine::build(config, &d.base).unwrap()
    };
    let opts = SearchOptions::new(10).with_nprobe(4);

    // One engine ships every transfer in one MigrateOut per source, the
    // other is throttled to single-transfer waves — the receivers count
    // *pieces*, not messages, so the epoch handshake must complete
    // identically either way.
    let unthrottled = build(0);
    let throttled = build(1);
    let plan = PartitionPlan::pure_dimension(4);
    let r0 = unthrottled.migrate_to(plan).unwrap();
    let r1 = throttled.migrate_to(plan).unwrap();
    assert_eq!(r0.to_epoch, r1.to_epoch);
    assert_eq!(
        r0.network_pieces, r1.network_pieces,
        "throttling must reshape message waves, not the shipped pieces"
    );
    assert_eq!(throttled.plan(), unthrottled.plan());

    // Both deployments landed on the same layout from the same seed, so
    // the post-migration bits must agree exactly.
    let a = unthrottled.search_batch(&d.queries, &opts).unwrap().results;
    let b = throttled.search_batch(&d.queries, &opts).unwrap().results;
    for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.len(), y.len(), "query {qi} lengths differ");
        for (nx, ny) in x.iter().zip(y) {
            assert!(
                matches_bitwise(std::slice::from_ref(nx), std::slice::from_ref(ny)),
                "query {qi}: throttled migration diverged: {nx:?} vs {ny:?}"
            );
        }
    }
    unthrottled.shutdown().unwrap();
    throttled.shutdown().unwrap();
}

#[test]
fn migrate_to_rejects_misfit_plans() {
    let d = clustered(1_000, 8, 3);
    let config = HarmonyConfig::builder()
        .n_machines(4)
        .nlist(8)
        .seed(7)
        .build()
        .unwrap();
    let engine = HarmonyEngine::build(config, &d.base).unwrap();
    // Wrong machine count.
    assert!(engine
        .migrate_to(PartitionPlan::new(3, 1).unwrap())
        .is_err());
    // A fitting plan migrates fine even on an 8-d dataset.
    assert!(engine.migrate_to(PartitionPlan::new(1, 4).unwrap()).is_ok());
    engine.shutdown().unwrap();
}
